//! Synthetic P&R workload generation.

use crate::abstracts::{AbsPin, CellAbstract, ConnProps, Layer};
use crate::floorplan::{
    Block, EdgeSide, Floorplan, GlobalStrategy, NetRule, PinConstraint, PinLoc,
};
use crate::geom::{Pt, Rect};
use crate::netlist::PhysNetlist;

/// Deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct PnrGenConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Cell instance count.
    pub cells: usize,
    /// Two-pin net count (a chain plus random extras).
    pub extra_nets: usize,
    /// Die side length in tracks.
    pub die: i32,
    /// How many nets get width/spacing/shield rules.
    pub constrained_nets: usize,
}

impl Default for PnrGenConfig {
    fn default() -> Self {
        PnrGenConfig {
            seed: 1,
            cells: 24,
            extra_nets: 8,
            die: 120,
            constrained_nets: 3,
        }
    }
}

/// A small standard-cell library with varied pin properties and
/// blockages (so access-derivation has something to disagree about).
pub fn standard_library() -> Vec<CellAbstract> {
    let mut inv_a = AbsPin::new("A", Layer::M1, Rect::new(Pt::new(0, 2), Pt::new(0, 2)));
    inv_a.props.must_connect = true;
    let inv_y = AbsPin::new("Y", Layer::M1, Rect::new(Pt::new(3, 2), Pt::new(3, 2)));

    let mut nand_a = AbsPin::new("A", Layer::M1, Rect::new(Pt::new(0, 1), Pt::new(0, 1)));
    nand_a.props.must_connect = true;
    let mut nand_b = AbsPin::new("B", Layer::M1, Rect::new(Pt::new(0, 4), Pt::new(0, 4)));
    nand_b.props.multiple_connect = true;
    let nand_y = AbsPin::new("Y", Layer::M1, Rect::new(Pt::new(5, 2), Pt::new(5, 2)));

    let mut buf_a1 = AbsPin::new("A1", Layer::M1, Rect::new(Pt::new(0, 1), Pt::new(0, 1)));
    buf_a1.props = ConnProps {
        equivalent_group: Some("in".into()),
        ..ConnProps::default()
    };
    let mut buf_a2 = AbsPin::new("A2", Layer::M1, Rect::new(Pt::new(0, 4), Pt::new(0, 4)));
    buf_a2.props = ConnProps {
        equivalent_group: Some("in".into()),
        connect_by_abutment: true,
        ..ConnProps::default()
    };
    let buf_y = AbsPin::new("Y", Layer::M1, Rect::new(Pt::new(5, 2), Pt::new(5, 2)));

    vec![
        CellAbstract::new("inv", 4, 6)
            .with_pin(inv_a)
            .with_pin(inv_y)
            // Internal strap that blocks the pins' northern corridor —
            // declared access says otherwise, so derivation disagrees.
            .with_blockage(Layer::M1, Rect::new(Pt::new(0, 4), Pt::new(3, 4))),
        CellAbstract::new("nand2", 6, 6)
            .with_pin(nand_a)
            .with_pin(nand_b)
            .with_pin(nand_y),
        CellAbstract::new("buf2", 6, 6)
            .with_pin(buf_a1)
            .with_pin(buf_a2)
            .with_pin(buf_y),
    ]
}

/// Generates a placement/routing problem plus a canonical floorplan
/// with net rules, keep-outs, globals, and a constrained block.
pub fn generate(cfg: &PnrGenConfig) -> (PhysNetlist, Floorplan) {
    let mut rng = Rng::new(cfg.seed);
    let mut nl = PhysNetlist::default();
    for a in standard_library() {
        nl.lib.push(a);
    }
    for i in 0..cfg.cells {
        let abs = (rng.below(nl.lib.len() as u64)) as usize;
        nl.add_cell(format!("u{i}"), abs);
    }
    // A connectivity chain over the first two thirds of the cells
    // keeps everything routable; the remaining cells drive extra nets.
    // Every pin is used by at most one net.
    let chain_n = (cfg.cells * 2 / 3).max(2);
    for i in 1..chain_n {
        let in_pin = match nl.lib[nl.cells[i].abs].name.as_str() {
            "buf2" => "A1",
            _ => "A",
        };
        nl.add_net(
            format!("n{i}"),
            vec![(i - 1, "Y".to_string()), (i, in_pin.to_string())],
        );
    }
    // Extra nets: drivers are the cells outside the chain (each Y used
    // once); loads are unused secondary inputs anywhere.
    let mut used_in: std::collections::BTreeSet<(usize, String)> =
        std::collections::BTreeSet::new();
    let mut drivers: Vec<usize> = (chain_n..cfg.cells).collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < cfg.extra_nets && !drivers.is_empty() && attempts < cfg.extra_nets * 40 {
        attempts += 1;
        let b = rng.below(cfg.cells as u64) as usize;
        let b_in = match nl.lib[nl.cells[b].abs].name.as_str() {
            "nand2" => "B",
            "buf2" => "A2",
            _ => continue, // inv has no free secondary input
        };
        if !used_in.insert((b, b_in.to_string())) {
            continue;
        }
        let a = drivers.remove((rng.below(drivers.len() as u64)) as usize);
        nl.add_net(
            format!("x{added}"),
            vec![(a, "Y".to_string()), (b, b_in.to_string())],
        );
        added += 1;
    }

    let die = Rect::new(Pt::new(0, 0), Pt::new(cfg.die - 1, cfg.die - 1));
    let mut fp = Floorplan::new(format!("gen{}", cfg.seed), die);
    // Keep-out in a corner.
    fp.keepouts.push(Rect::new(
        Pt::new(cfg.die - 16, cfg.die - 16),
        Pt::new(cfg.die - 2, cfg.die - 2),
    ));
    fp.globals.insert("VDD".into(), GlobalStrategy::Ring);
    fp.globals.insert("GND".into(), GlobalStrategy::Strap);
    fp.globals.insert("CLK".into(), GlobalStrategy::Tree);

    // Net rules on the first few chain nets.
    for k in 0..cfg.constrained_nets {
        let name = format!("n{}", k + 1);
        let rule = match k % 3 {
            0 => NetRule::new(&name).width(2).current(7.0),
            1 => NetRule::new(&name).spacing(2),
            _ => NetRule::new(&name).shielded(),
        };
        fp.net_rules.insert(name, rule);
    }

    // One constrained soft block.
    let mut blk = Block::new(
        "macro0",
        Rect::new(Pt::new(2, cfg.die - 20), Pt::new(21, cfg.die - 6)),
    );
    blk.aspect = (0.5, 2.0);
    blk.pins.push(PinConstraint {
        pin: "n1".into(),
        loc: PinLoc::Edge(EdgeSide::South),
    });
    blk.pins.push(PinConstraint {
        pin: "x0".into(),
        loc: PinLoc::Literal(Pt::new(21, cfg.die - 10)),
    });
    fp.blocks.push(blk);

    (nl, fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use crate::route::{route, RouteConfig};
    use std::collections::BTreeMap;

    #[test]
    fn generated_workload_is_placeable_and_mostly_routable() {
        let (mut nl, fp) = generate(&PnrGenConfig::default());
        let stats = place(&mut nl, &fp);
        assert_eq!(stats.unplaced, 0, "all cells fit");
        let r = route(&nl, &fp, &BTreeMap::new(), RouteConfig::default());
        let total = nl.nets.len();
        assert!(
            r.routed * 10 >= total * 9,
            "only {}/{} routed (failed: {:?})",
            r.routed,
            total,
            r.failed
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PnrGenConfig::default());
        let b = generate(&PnrGenConfig::default());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn floorplan_is_valid() {
        let (_, fp) = generate(&PnrGenConfig::default());
        assert!(fp.validate().is_empty(), "{:?}", fp.validate());
    }
}
