//! Floorplans and routing constraints.
//!
//! Section 4, "Block floorplanning": "a designer makes decisions on
//! block aspect ratios and size, general and literal pin locations, and
//! special blockages marking keep out zones. He also defines the
//! general routing strategies for global signals such as power, ground
//! and clock." And "Interconnect topology": "routers should be able to
//! accept width specifications for selected nets", spacing, shielding.

use std::collections::BTreeMap;

use crate::geom::{Pt, Rect};

/// Which die edge a pin constraint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSide {
    /// Top edge.
    North,
    /// Bottom edge.
    South,
    /// Right edge.
    East,
    /// Left edge.
    West,
}

/// A block pin location constraint: literal or general.
#[derive(Debug, Clone, PartialEq)]
pub enum PinLoc {
    /// Exact track position ("literal pin location").
    Literal(Pt),
    /// Somewhere along an edge ("general pin location").
    Edge(EdgeSide),
}

/// A pin constraint on a block.
#[derive(Debug, Clone, PartialEq)]
pub struct PinConstraint {
    /// Pin (net) name.
    pub pin: String,
    /// Required location.
    pub loc: PinLoc,
}

/// A block in the floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name.
    pub name: String,
    /// Placement area.
    pub area: Rect,
    /// Allowed aspect-ratio range `(min, max)` for soft blocks.
    pub aspect: (f64, f64),
    /// Pin constraints.
    pub pins: Vec<PinConstraint>,
}

impl Block {
    /// Creates a hard block with fixed area.
    pub fn new(name: impl Into<String>, area: Rect) -> Self {
        Block {
            name: name.into(),
            area,
            aspect: (0.1, 10.0),
            pins: Vec::new(),
        }
    }

    /// True when the block's shape satisfies its aspect constraint.
    pub fn aspect_ok(&self) -> bool {
        let a = self.area.aspect();
        a >= self.aspect.0 && a <= self.aspect.1
    }
}

/// Global-signal routing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalStrategy {
    /// Power/ground ring around the core.
    Ring,
    /// Vertical straps across the core.
    Strap,
    /// Balanced tree (clock).
    Tree,
}

/// Per-net routing rules: "Coupling capacitance ... can be controlled
/// by shortening wire length, increasing spacing, or even by shielding.
/// ... wider widths must be used for nets with larger currents."
#[derive(Debug, Clone, PartialEq)]
pub struct NetRule {
    /// Net name.
    pub net: String,
    /// Required trace width in tracks (1 = minimum).
    pub width: i32,
    /// Required spacing to neighbours in tracks (0 = minimum).
    pub spacing: i32,
    /// Route grounded shield wires alongside.
    pub shield: bool,
    /// Drive current in mA (used by the current-density check).
    pub current_ma: f64,
    /// Maximum allowed routed length (0 = unlimited).
    pub max_length: i32,
}

impl NetRule {
    /// A default (minimum-rule) entry for a net.
    pub fn new(net: impl Into<String>) -> Self {
        NetRule {
            net: net.into(),
            width: 1,
            spacing: 0,
            shield: false,
            current_ma: 1.0,
            max_length: 0,
        }
    }

    /// Sets the trace width, builder style.
    pub fn width(mut self, w: i32) -> Self {
        self.width = w;
        self
    }

    /// Sets the spacing, builder style.
    pub fn spacing(mut self, s: i32) -> Self {
        self.spacing = s;
        self
    }

    /// Requests shielding, builder style.
    pub fn shielded(mut self) -> Self {
        self.shield = true;
        self
    }

    /// Sets the drive current, builder style.
    pub fn current(mut self, ma: f64) -> Self {
        self.current_ma = ma;
        self
    }
}

/// The canonical floorplan the backplane feeds forward.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Design name.
    pub name: String,
    /// Die area.
    pub die: Rect,
    /// Placed blocks.
    pub blocks: Vec<Block>,
    /// Keep-out zones ("special blockages marking keep out zones").
    pub keepouts: Vec<Rect>,
    /// Per-net routing rules.
    pub net_rules: BTreeMap<String, NetRule>,
    /// Global-signal strategies (`VDD`/`GND`/`CLK` → strategy).
    pub globals: BTreeMap<String, GlobalStrategy>,
}

impl Floorplan {
    /// Creates an empty floorplan over a die.
    pub fn new(name: impl Into<String>, die: Rect) -> Self {
        Floorplan {
            name: name.into(),
            die,
            blocks: Vec::new(),
            keepouts: Vec::new(),
            net_rules: BTreeMap::new(),
            globals: BTreeMap::new(),
        }
    }

    /// Adds a net rule, builder style.
    pub fn with_rule(mut self, rule: NetRule) -> Self {
        self.net_rules.insert(rule.net.clone(), rule);
        self
    }

    /// The rule for a net (a default minimum rule when unspecified).
    pub fn rule_for(&self, net: &str) -> NetRule {
        self.net_rules
            .get(net)
            .cloned()
            .unwrap_or_else(|| NetRule::new(net))
    }

    /// Sanity checks: blocks within the die, no block overlaps, aspect
    /// constraints met. Returns human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.blocks {
            if !(self.die.contains(Pt::new(b.area.x0, b.area.y0))
                && self.die.contains(Pt::new(b.area.x1, b.area.y1)))
            {
                out.push(format!("block `{}` exceeds the die", b.name));
            }
            if !b.aspect_ok() {
                out.push(format!(
                    "block `{}` aspect {:.2} outside [{}, {}]",
                    b.name,
                    b.area.aspect(),
                    b.aspect.0,
                    b.aspect.1
                ));
            }
        }
        for (i, a) in self.blocks.iter().enumerate() {
            for b in &self.blocks[i + 1..] {
                if a.area.intersects(b.area) {
                    out.push(format!("blocks `{}` and `{}` overlap", a.name, b.name));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_rule_builder() {
        let r = NetRule::new("clk")
            .width(2)
            .spacing(2)
            .shielded()
            .current(12.0);
        assert_eq!(r.width, 2);
        assert_eq!(r.spacing, 2);
        assert!(r.shield);
        assert_eq!(r.current_ma, 12.0);
    }

    #[test]
    fn floorplan_validation_catches_problems() {
        let mut fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(99, 99)));
        fp.blocks
            .push(Block::new("ok", Rect::new(Pt::new(0, 0), Pt::new(30, 30))));
        fp.blocks.push(Block::new(
            "overlap",
            Rect::new(Pt::new(20, 20), Pt::new(50, 50)),
        ));
        fp.blocks.push(Block::new(
            "outside",
            Rect::new(Pt::new(90, 90), Pt::new(120, 95)),
        ));
        let mut thin = Block::new("thin", Rect::new(Pt::new(60, 0), Pt::new(61, 80)));
        thin.aspect = (0.5, 2.0);
        fp.blocks.push(thin);
        let problems = fp.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn default_rule_for_unlisted_net() {
        let fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(9, 9)))
            .with_rule(NetRule::new("clk").width(3));
        assert_eq!(fp.rule_for("clk").width, 3);
        assert_eq!(fp.rule_for("other").width, 1);
    }
}
