//! A greedy row placer.
//!
//! Just enough placement that floorplan constraints (keep-outs, die
//! area) and the router have something real to act on.

use obs::{NullRecorder, Recorder, Span};

use crate::floorplan::Floorplan;
use crate::geom::{Pt, Rect};
use crate::netlist::PhysNetlist;

/// Placement statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Cells placed.
    pub placed: usize,
    /// Cells that did not fit.
    pub unplaced: usize,
    /// Resulting half-perimeter wirelength.
    pub hpwl: i64,
    /// Rows used.
    pub rows: usize,
}

/// Places cells into rows within the die, skipping keep-outs and block
/// areas. Cells are ordered by connectivity (highest degree first) so
/// strongly-connected cells cluster — a cheap wirelength heuristic.
pub fn place(nl: &mut PhysNetlist, fp: &Floorplan) -> PlaceStats {
    place_recorded(nl, fp, &NullRecorder)
}

/// Like [`place`], but emits a `pnr.place` span (with placed/unplaced/
/// rows/hpwl attributes) and a `pnr.place.attempts` counter — one per
/// candidate position tried, so attempts/placed measures how hard the
/// placer worked per cell.
pub fn place_recorded(nl: &mut PhysNetlist, fp: &Floorplan, recorder: &dyn Recorder) -> PlaceStats {
    let span = Span::enter(recorder, "pnr.place");
    span.attr("cells", nl.cells.len());
    let mut attempts = 0u64;
    let stats = place_inner(nl, fp, &mut attempts);
    recorder.add_counter("pnr.place.attempts", attempts);
    span.attr("placed", stats.placed);
    span.attr("unplaced", stats.unplaced);
    span.attr("rows", stats.rows);
    span.attr("hpwl", stats.hpwl);
    stats
}

fn place_inner(nl: &mut PhysNetlist, fp: &Floorplan, attempts: &mut u64) -> PlaceStats {
    let mut stats = PlaceStats::default();
    if nl.cells.is_empty() {
        return stats;
    }
    let row_height = nl
        .lib
        .iter()
        .map(|a| a.boundary.height())
        .max()
        .unwrap_or(1);
    let margin = 2;

    // Reserved areas: keep-outs plus floorplan blocks.
    let mut reserved: Vec<Rect> = fp.keepouts.clone();
    reserved.extend(fp.blocks.iter().map(|b| b.area));

    // Order: highest connectivity first, stable by index.
    let degrees = nl.degrees();
    let mut order: Vec<usize> = (0..nl.cells.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(degrees[i]), i));

    let mut x = fp.die.x0 + margin;
    let mut y = fp.die.y0 + margin;
    stats.rows = 1;

    for idx in order {
        let width = nl.lib[nl.cells[idx].abs].boundary.width();
        let height = nl.lib[nl.cells[idx].abs].boundary.height();
        let gap = 4; // routing channel between cells
        loop {
            *attempts += 1;
            if y + row_height > fp.die.y1 - margin {
                stats.unplaced += 1;
                break;
            }
            if x + width > fp.die.x1 - margin {
                x = fp.die.x0 + margin;
                y += row_height + gap;
                stats.rows += 1;
                continue;
            }
            let footprint = Rect::new(Pt::new(x, y), Pt::new(x + width - 1, y + height - 1));
            if reserved.iter().any(|r| r.intersects(footprint)) {
                x += width + gap;
                continue;
            }
            nl.cells[idx].loc = Some(Pt::new(x, y));
            reserved.push(footprint);
            stats.placed += 1;
            x += width + gap;
            break;
        }
    }
    stats.hpwl = nl.hpwl();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstracts::{AbsPin, CellAbstract, Layer};

    fn netlist(cells: usize) -> PhysNetlist {
        let mut nl = PhysNetlist::default();
        let a = nl.add_abstract(
            CellAbstract::new("inv", 4, 6)
                .with_pin(AbsPin::new(
                    "A",
                    Layer::M1,
                    Rect::new(Pt::new(0, 2), Pt::new(0, 2)),
                ))
                .with_pin(AbsPin::new(
                    "Y",
                    Layer::M1,
                    Rect::new(Pt::new(3, 2), Pt::new(3, 2)),
                )),
        );
        for i in 0..cells {
            nl.add_cell(format!("u{i}"), a);
        }
        for i in 1..cells {
            nl.add_net(format!("n{i}"), vec![(i - 1, "Y".into()), (i, "A".into())]);
        }
        nl
    }

    #[test]
    fn all_cells_fit_on_a_reasonable_die() {
        let mut nl = netlist(20);
        let fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(79, 79)));
        let stats = place(&mut nl, &fp);
        assert_eq!(stats.placed, 20);
        assert_eq!(stats.unplaced, 0);
        assert!(stats.hpwl > 0);
        // No overlaps.
        let rects: Vec<Rect> = nl
            .cells
            .iter()
            .map(|c| {
                let a = &nl.lib[c.abs].boundary;
                let p = c.loc.unwrap();
                Rect::new(p, Pt::new(p.x + a.width() - 1, p.y + a.height() - 1))
            })
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(*b));
            }
        }
    }

    #[test]
    fn keepouts_are_respected() {
        let mut nl = netlist(10);
        let mut fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(59, 59)));
        let zone = Rect::new(Pt::new(0, 0), Pt::new(30, 30));
        fp.keepouts.push(zone);
        let stats = place(&mut nl, &fp);
        assert_eq!(stats.placed, 10);
        for c in &nl.cells {
            let p = c.loc.unwrap();
            let a = &nl.lib[c.abs].boundary;
            let footprint = Rect::new(p, Pt::new(p.x + a.width() - 1, p.y + a.height() - 1));
            assert!(!footprint.intersects(zone), "{} at {p}", c.name);
        }
    }

    #[test]
    fn tiny_die_leaves_cells_unplaced() {
        let mut nl = netlist(50);
        let fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(19, 19)));
        let stats = place(&mut nl, &fp);
        assert!(stats.unplaced > 0);
        assert_eq!(stats.placed + stats.unplaced, 50);
    }
}
