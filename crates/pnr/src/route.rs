//! A two-layer maze router that honours (or ignores) per-net
//! constraints.
//!
//! The router exists so the Section 4 claims are measurable: feeding
//! width/spacing/shield constraints forward demonstrably changes
//! coupling and current-density results ([`crate::drc`]); dropping them
//! (as a tool without the feature must) demonstrably hurts.

use std::collections::{BTreeMap, VecDeque};

use obs::{NullRecorder, Recorder, Span};

use crate::backplane::EffectiveRule;
use crate::floorplan::Floorplan;
use crate::geom::{Pt, Rect};
use crate::netlist::PhysNetlist;

/// Cell ownership markers in the routing grid.
pub const FREE: i32 = -1;
/// Obstacle (cell footprint, keep-out).
pub const BLOCKED: i32 = -2;
/// Shield trace.
pub const SHIELD: i32 = -3;

/// The routing grid: two layers of net-ownership cells.
#[derive(Debug, Clone)]
pub struct RouteGrid {
    /// Grid width in tracks.
    pub width: i32,
    /// Grid height in tracks.
    pub height: i32,
    /// Ownership per layer (`[M1, M2]`), row-major.
    pub cells: [Vec<i32>; 2],
    /// Net names by id.
    pub net_names: Vec<String>,
    /// Effective spacing demand per net id (spacing is mutual: a net's
    /// halo repels later routes even when those have no rule).
    pub net_spacing: Vec<i32>,
    /// Pin-access reservations per layer: a cell reserved for one net
    /// may not be entered by any other (keeps early routes from walling
    /// in a later net's only pin escape).
    pub reserve: [Vec<i32>; 2],
}

impl RouteGrid {
    /// Creates an empty grid of the given size (all cells free) —
    /// used by global routing and tests.
    pub fn empty(width: i32, height: i32) -> Self {
        Self::new(width, height)
    }

    /// Claims a cell for a global structure (see
    /// [`crate::global_route`]).
    pub fn set_global(&mut self, layer: usize, p: Pt) {
        self.set(layer, p, crate::global_route::GLOBAL);
    }

    fn new(width: i32, height: i32) -> Self {
        let n = (width as usize) * (height as usize);
        RouteGrid {
            width,
            height,
            cells: [vec![FREE; n], vec![FREE; n]],
            net_names: Vec::new(),
            net_spacing: Vec::new(),
            reserve: [vec![FREE; n], vec![FREE; n]],
        }
    }

    fn idx(&self, p: Pt) -> Option<usize> {
        if p.x < 0 || p.y < 0 || p.x >= self.width || p.y >= self.height {
            return None;
        }
        Some((p.y as usize) * (self.width as usize) + p.x as usize)
    }

    /// Ownership of a cell (`BLOCKED` outside the grid).
    pub fn at(&self, layer: usize, p: Pt) -> i32 {
        match self.idx(p) {
            Some(i) => self.cells[layer][i],
            None => BLOCKED,
        }
    }

    fn set(&mut self, layer: usize, p: Pt, v: i32) {
        if let Some(i) = self.idx(p) {
            self.cells[layer][i] = v;
        }
    }

    fn reserve_at(&self, layer: usize, p: Pt) -> i32 {
        match self.idx(p) {
            Some(i) => self.reserve[layer][i],
            None => BLOCKED,
        }
    }

    fn set_reserve(&mut self, layer: usize, p: Pt, v: i32) {
        if let Some(i) = self.idx(p) {
            self.reserve[layer][i] = v;
        }
    }

    /// True when no foreign net cell sits within the *mutual* spacing
    /// requirement of `p` on `layer`: the scan radius is the larger of
    /// this net's demand and any neighbour's demand, so a constrained
    /// net's halo repels later unconstrained routes too.
    fn spacing_ok(&self, layer: usize, p: Pt, s: i32, net: i32) -> bool {
        let max_other = self.net_spacing.iter().copied().max().unwrap_or(0);
        let r = s.max(max_other);
        if r <= 0 {
            return true;
        }
        for dx in -r..=r {
            for dy in -r..=r {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let q = Pt::new(p.x + dx, p.y + dy);
                let v = self.at(layer, q);
                if v >= 0 && v != net {
                    let d = dx.abs().max(dy.abs());
                    let req = s.max(self.net_spacing.get(v as usize).copied().unwrap_or(0));
                    if d <= req {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Routing options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Honour per-net width/spacing/shield constraints. Disabling this
    /// is the "no constraint feed-forward" ablation.
    pub honor_rules: bool,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig { honor_rules: true }
    }
}

/// Routing outcome.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Nets routed successfully.
    pub routed: usize,
    /// Nets that could not be completed.
    pub failed: Vec<String>,
    /// Total path cells.
    pub wirelength: i64,
    /// Layer changes.
    pub vias: usize,
    /// Final grid (for DRC).
    pub grid: RouteGrid,
    /// Effective routed width per net.
    pub widths: BTreeMap<String, i32>,
}

/// Routes every net of a placed netlist.
///
/// `rules` carries the *effective* constraints a tool honours (from the
/// backplane); with `cfg.honor_rules == false` the router ignores them
/// entirely.
pub fn route(
    nl: &PhysNetlist,
    fp: &Floorplan,
    rules: &BTreeMap<String, EffectiveRule>,
    cfg: RouteConfig,
) -> RouteResult {
    route_recorded(nl, fp, rules, cfg, &NullRecorder)
}

/// Like [`route`], but emits a `pnr.route` span (routed/failed/
/// wirelength/vias attributes), `pnr.route.attempts` /
/// `pnr.route.failed` counters (one attempt per terminal-to-net maze
/// search), and a `pnr.route.path_len` histogram over completed path
/// lengths.
pub fn route_recorded(
    nl: &PhysNetlist,
    fp: &Floorplan,
    rules: &BTreeMap<String, EffectiveRule>,
    cfg: RouteConfig,
    recorder: &dyn Recorder,
) -> RouteResult {
    let span = Span::enter(recorder, "pnr.route");
    span.attr("nets", nl.nets.len());
    span.attr("honor_rules", cfg.honor_rules);
    let result = route_inner(nl, fp, rules, cfg, recorder);
    span.attr("routed", result.routed);
    span.attr("failed", result.failed.len());
    span.attr("wirelength", result.wirelength);
    span.attr("vias", result.vias);
    result
}

fn route_inner(
    nl: &PhysNetlist,
    fp: &Floorplan,
    rules: &BTreeMap<String, EffectiveRule>,
    cfg: RouteConfig,
    recorder: &dyn Recorder,
) -> RouteResult {
    let width = fp.die.width();
    let height = fp.die.height();
    let mut grid = RouteGrid::new(width, height);

    // Obstacles: cell footprints (both layers' M1 only — M2 routes over
    // cells), keep-outs (both layers).
    for cell in &nl.cells {
        let Some(at) = cell.loc else { continue };
        let b = &nl.lib[cell.abs].boundary;
        for x in at.x..at.x + b.width() {
            for y in at.y..at.y + b.height() {
                grid.set(0, Pt::new(x - fp.die.x0, y - fp.die.y0), BLOCKED);
            }
        }
    }
    for k in &fp.keepouts {
        let r = Rect::new(
            Pt::new(k.x0 - fp.die.x0, k.y0 - fp.die.y0),
            Pt::new(k.x1 - fp.die.x0, k.y1 - fp.die.y0),
        );
        for x in r.x0..=r.x1 {
            for y in r.y0..=r.y1 {
                grid.set(0, Pt::new(x, y), BLOCKED);
                grid.set(1, Pt::new(x, y), BLOCKED);
            }
        }
    }

    // Net ids are assigned up front so reservations and mutual spacing
    // can refer to nets not yet routed.
    for net in &nl.nets {
        grid.net_names.push(net.name.clone());
        let spacing = if cfg.honor_rules {
            rules.get(&net.name).map(|r| r.spacing).unwrap_or(0)
        } else {
            0
        };
        grid.net_spacing.push(spacing);
    }

    // Pin-escape reservations: every pin's grid cell, its free M1
    // neighbours, and the M2 cell above it are reserved for that pin's
    // net. Cells that are other nets' pins stay unreserved.
    let mut pin_cells: std::collections::BTreeMap<(usize, i32, i32), i32> =
        std::collections::BTreeMap::new();
    for (net_id, net) in nl.nets.iter().enumerate() {
        for pin in &net.pins {
            if let Some(loc) = nl.pin_location(pin) {
                let p = Pt::new(loc.x - fp.die.x0, loc.y - fp.die.y0);
                pin_cells.insert((0usize, p.x, p.y), net_id as i32);
            }
        }
    }
    for (&(l, x, y), &net_id) in &pin_cells {
        let p = Pt::new(x, y);
        let mut candidates = vec![(1 - l, p)];
        for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            candidates.push((l, Pt::new(x + dx, y + dy)));
        }
        for (cl, cp) in candidates {
            if pin_cells.contains_key(&(cl, cp.x, cp.y)) {
                continue;
            }
            if grid.at(cl, cp) == FREE && grid.reserve_at(cl, cp) == FREE {
                grid.set_reserve(cl, cp, net_id);
            }
        }
    }

    // Net ordering: constrained nets first, then by pin count.
    let mut order: Vec<usize> = (0..nl.nets.len()).collect();
    order.sort_by_key(|&i| {
        let name = &nl.nets[i].name;
        let constrained = rules
            .get(name)
            .map(|r| r.width > 1 || r.spacing > 0 || r.shield)
            .unwrap_or(false);
        (std::cmp::Reverse(constrained as u8), nl.nets[i].pins.len())
    });

    let mut result = RouteResult {
        routed: 0,
        failed: Vec::new(),
        wirelength: 0,
        vias: 0,
        grid: RouteGrid::new(1, 1), // replaced at the end
        widths: BTreeMap::new(),
    };

    for net_idx in order {
        let net = &nl.nets[net_idx];
        let net_id = net_idx as i32;

        let default_rule = EffectiveRule {
            net: net.name.clone(),
            width: 1,
            spacing: 0,
            shield: false,
            max_length: 0,
        };
        let rule = if cfg.honor_rules {
            rules.get(&net.name).cloned().unwrap_or(default_rule)
        } else {
            default_rule
        };

        // Terminals in grid coordinates, each on its pin's layer.
        let mut terminals: Vec<(usize, Pt)> = Vec::new();
        for pin in &net.pins {
            let Some(loc) = nl.pin_location(pin) else {
                continue;
            };
            let layer = if nl.lib[nl.cells[pin.0].abs]
                .pin(&pin.1)
                .map(|p| p.layer.is_horizontal())
                .unwrap_or(true)
            {
                0
            } else {
                1
            };
            terminals.push((layer, Pt::new(loc.x - fp.die.x0, loc.y - fp.die.y0)));
        }
        if terminals.len() < 2 {
            continue;
        }

        // Seed: first terminal belongs to the net.
        grid.set(terminals[0].0, terminals[0].1, net_id);
        let mut net_cells: Vec<(usize, Pt)> = vec![terminals[0]];
        let mut ok = true;

        for &(tl, tp) in &terminals[1..] {
            grid.set(tl, tp, net_id);
            recorder.add_counter("pnr.route.attempts", 1);
            match bfs(&grid, net_id, (tl, tp), &rule) {
                Some(path) => {
                    recorder.record_value("pnr.route.path_len", path.len() as u64);
                    result.vias += path.windows(2).filter(|w| w[0].0 != w[1].0).count();
                    for &(l, p) in &path {
                        grid.set(l, p, net_id);
                        net_cells.push((l, p));
                    }
                    result.wirelength += path.len() as i64;
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }

        if !ok {
            recorder.add_counter("pnr.route.failed", 1);
            result.failed.push(net.name.clone());
            continue;
        }
        result.routed += 1;
        result.widths.insert(net.name.clone(), rule.width);

        // Widen: claim extra adjacent tracks for width > 1.
        if rule.width > 1 {
            for &(l, p) in &net_cells.clone() {
                for k in 1..rule.width {
                    let q = if l == 0 {
                        Pt::new(p.x, p.y + k)
                    } else {
                        Pt::new(p.x + k, p.y)
                    };
                    if grid.at(l, q) == FREE {
                        grid.set(l, q, net_id);
                    }
                }
            }
        }
        // Shield: claim a ring of free neighbours as shield traces.
        if rule.shield {
            for &(l, p) in &net_cells {
                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                    let q = Pt::new(p.x + dx, p.y + dy);
                    if grid.at(l, q) == FREE {
                        grid.set(l, q, SHIELD);
                    }
                }
            }
        }
    }

    result.grid = grid;
    result
}

/// BFS from `start` to any cell already owned by `net_id`.
fn bfs(
    grid: &RouteGrid,
    net_id: i32,
    start: (usize, Pt),
    rule: &EffectiveRule,
) -> Option<Vec<(usize, Pt)>> {
    let n = (grid.width as usize) * (grid.height as usize);
    // prev[layer][idx]: encoded predecessor + 1, 0 = unvisited.
    let mut prev = [vec![0u32; n], vec![0u32; n]];
    let encode = |l: usize, i: usize| (((l << 30) | i) + 1) as u32;
    let decode = |v: u32| {
        let v = (v - 1) as usize;
        ((v >> 30) & 1, v & ((1 << 30) - 1))
    };

    let start_idx = grid.idx(start.1)?;
    prev[start.0][start_idx] = encode(start.0, start_idx); // self-loop marks start
    let mut q = VecDeque::new();
    q.push_back(start);

    while let Some((l, p)) = q.pop_front() {
        let here = grid.idx(p).expect("in grid");
        // Goal test: adjacent own-net cell (not the start itself).
        if grid.at(l, p) == net_id && !(l == start.0 && p == start.1) {
            // Reconstruct.
            let mut path = Vec::new();
            let (mut cl, mut ci) = (l, here);
            loop {
                let pt = Pt::new(
                    (ci % grid.width as usize) as i32,
                    (ci / grid.width as usize) as i32,
                );
                path.push((cl, pt));
                let enc = prev[cl][ci];
                let (nl_, ni) = decode(enc);
                if nl_ == cl && ni == ci {
                    break;
                }
                cl = nl_;
                ci = ni;
            }
            path.reverse();
            return Some(path);
        }
        // Moves: 4 planar + layer switch.
        let moves: [(usize, Pt); 5] = [
            (l, Pt::new(p.x + 1, p.y)),
            (l, Pt::new(p.x - 1, p.y)),
            (l, Pt::new(p.x, p.y + 1)),
            (l, Pt::new(p.x, p.y - 1)),
            (1 - l, p),
        ];
        for (ml, mp) in moves {
            let Some(mi) = grid.idx(mp) else { continue };
            if prev[ml][mi] != 0 {
                continue;
            }
            let owner = grid.at(ml, mp);
            let reserved = grid.reserve_at(ml, mp);
            let enterable = owner == net_id
                || (owner == FREE
                    && (reserved == FREE || reserved == net_id)
                    && grid.spacing_ok(ml, mp, rule.spacing, net_id));
            if !enterable {
                continue;
            }
            prev[ml][mi] = encode(l, here);
            q.push_back((ml, mp));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstracts::{AbsPin, CellAbstract, Layer};
    use crate::place::place;

    fn placed_problem(cells: usize, die: i32) -> (PhysNetlist, Floorplan) {
        let mut nl = PhysNetlist::default();
        let a = nl.add_abstract(
            CellAbstract::new("inv", 4, 6)
                .with_pin(AbsPin::new(
                    "A",
                    Layer::M1,
                    Rect::new(Pt::new(0, 2), Pt::new(0, 2)),
                ))
                .with_pin(AbsPin::new(
                    "Y",
                    Layer::M1,
                    Rect::new(Pt::new(3, 2), Pt::new(3, 2)),
                )),
        );
        for i in 0..cells {
            nl.add_cell(format!("u{i}"), a);
        }
        for i in 1..cells {
            nl.add_net(format!("n{i}"), vec![(i - 1, "Y".into()), (i, "A".into())]);
        }
        let fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(die - 1, die - 1)));
        (nl, fp)
    }

    #[test]
    fn chain_routes_completely() {
        let (mut nl, fp) = placed_problem(8, 60);
        place(&mut nl, &fp);
        let r = route(&nl, &fp, &BTreeMap::new(), RouteConfig::default());
        assert_eq!(r.routed, 7, "failed: {:?}", r.failed);
        assert!(r.failed.is_empty());
        assert!(r.wirelength > 0);
    }

    #[test]
    fn wide_net_claims_extra_tracks() {
        let (mut nl, fp) = placed_problem(3, 60);
        place(&mut nl, &fp);
        let mut rules = BTreeMap::new();
        rules.insert(
            "n1".to_string(),
            EffectiveRule {
                net: "n1".into(),
                width: 3,
                spacing: 0,
                shield: false,
                max_length: 0,
            },
        );
        let r = route(&nl, &fp, &rules, RouteConfig::default());
        assert_eq!(r.widths.get("n1"), Some(&3));
        // More cells owned by n1 than the bare path.
        let n1_id = r.grid.net_names.iter().position(|n| n == "n1").unwrap() as i32;
        let owned = r.grid.cells[0]
            .iter()
            .chain(&r.grid.cells[1])
            .filter(|&&v| v == n1_id)
            .count() as i64;
        assert!(owned > r.wirelength / 2);
    }

    #[test]
    fn shielded_net_reserves_neighbours() {
        let (mut nl, fp) = placed_problem(3, 60);
        place(&mut nl, &fp);
        let mut rules = BTreeMap::new();
        rules.insert(
            "n1".to_string(),
            EffectiveRule {
                net: "n1".into(),
                width: 1,
                spacing: 0,
                shield: true,
                max_length: 0,
            },
        );
        let r = route(&nl, &fp, &rules, RouteConfig::default());
        let shields = r.grid.cells[0]
            .iter()
            .chain(&r.grid.cells[1])
            .filter(|&&v| v == SHIELD)
            .count();
        assert!(shields > 0);
    }

    #[test]
    fn ignoring_rules_changes_nothing_for_plain_nets() {
        let (mut nl, fp) = placed_problem(5, 60);
        place(&mut nl, &fp);
        let honored = route(&nl, &fp, &BTreeMap::new(), RouteConfig::default());
        let ignored = route(
            &nl,
            &fp,
            &BTreeMap::new(),
            RouteConfig { honor_rules: false },
        );
        assert_eq!(honored.routed, ignored.routed);
    }

    #[test]
    fn impossible_route_reports_failure() {
        let mut nl = PhysNetlist::default();
        let a = nl.add_abstract(CellAbstract::new("pad", 2, 2).with_pin(AbsPin::new(
            "P",
            Layer::M1,
            Rect::new(Pt::new(0, 0), Pt::new(0, 0)),
        )));
        let c0 = nl.add_cell("l", a);
        let c1 = nl.add_cell("r", a);
        nl.cells[0].loc = Some(Pt::new(1, 5));
        nl.cells[1].loc = Some(Pt::new(17, 5));
        nl.add_net("x", vec![(c0, "P".into()), (c1, "P".into())]);
        let mut fp = Floorplan::new("f", Rect::new(Pt::new(0, 0), Pt::new(19, 11)));
        // A full-height wall of keep-out between them, both layers.
        fp.keepouts.push(Rect::new(Pt::new(9, 0), Pt::new(10, 11)));
        let r = route(&nl, &fp, &BTreeMap::new(), RouteConfig::default());
        assert_eq!(r.routed, 0);
        assert_eq!(r.failed, vec!["x".to_string()]);
    }
}
