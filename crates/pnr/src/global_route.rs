//! Global-signal routing: power rings, straps, and clock trunks.
//!
//! Section 4: the designer "defines the general routing strategies for
//! global signals such as power, ground and clock" during
//! floorplanning. This module actually draws those structures into the
//! routing grid, so a tool that *lost* the strategy (see the backplane
//! coverage report) produces a measurably worse supply: unpowered
//! cells.

use crate::floorplan::{Floorplan, GlobalStrategy};
use crate::geom::{Pt, Rect};
use crate::netlist::PhysNetlist;
use crate::route::{RouteGrid, FREE};

/// One drawn global structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalShape {
    /// The global net.
    pub net: String,
    /// Strategy drawn.
    pub strategy: GlobalStrategy,
    /// Cells claimed `(layer, point)`.
    pub cells: Vec<(usize, Pt)>,
}

/// Result of global routing.
#[derive(Debug, Clone, Default)]
pub struct GlobalRouteResult {
    /// Shapes drawn.
    pub shapes: Vec<GlobalShape>,
    /// Grid cells claimed in total.
    pub claimed: usize,
    /// Strategies skipped because the tool lost them.
    pub skipped: Vec<String>,
}

/// Marker id for global shapes in the grid (distinct from signal nets
/// and shields).
pub const GLOBAL: i32 = -4;

/// Draws the floorplan's global strategies into a grid.
///
/// `supported` filters which strategies the consuming tool understands
/// (from the backplane's coverage); unsupported entries are recorded in
/// [`GlobalRouteResult::skipped`] and not drawn.
pub fn draw_globals(
    grid: &mut RouteGrid,
    fp: &Floorplan,
    supported: impl Fn(GlobalStrategy) -> bool,
) -> GlobalRouteResult {
    let mut result = GlobalRouteResult::default();
    let margin = 1;
    let core = Rect {
        x0: margin,
        y0: margin,
        x1: grid.width - 1 - margin,
        y1: grid.height - 1 - margin,
    };

    for (net, &strategy) in &fp.globals {
        if !supported(strategy) {
            result.skipped.push(net.clone());
            continue;
        }
        let mut cells = Vec::new();
        let mut claim = |grid: &mut RouteGrid, layer: usize, p: Pt| {
            if grid.at(layer, p) == FREE {
                grid.set_global(layer, p);
                cells.push((layer, p));
            }
        };
        match strategy {
            GlobalStrategy::Ring => {
                // A ring on M1 (horizontal edges) and M2 (vertical edges).
                for x in core.x0..=core.x1 {
                    claim(grid, 0, Pt::new(x, core.y0));
                    claim(grid, 0, Pt::new(x, core.y1));
                }
                for y in core.y0..=core.y1 {
                    claim(grid, 1, Pt::new(core.x0, y));
                    claim(grid, 1, Pt::new(core.x1, y));
                }
            }
            GlobalStrategy::Strap => {
                // Vertical M2 straps every 16 tracks.
                let mut x = core.x0 + 4;
                while x <= core.x1 {
                    for y in core.y0..=core.y1 {
                        claim(grid, 1, Pt::new(x, y));
                    }
                    x += 16;
                }
            }
            GlobalStrategy::Tree => {
                // A clock trunk: one horizontal spine at mid-height on M1.
                let y = (core.y0 + core.y1) / 2;
                for x in core.x0..=core.x1 {
                    claim(grid, 0, Pt::new(x, y));
                }
            }
        }
        result.claimed += cells.len();
        result.shapes.push(GlobalShape {
            net: net.clone(),
            strategy,
            cells,
        });
    }
    result
}

/// Power-supply check: every placed cell must have a power shape
/// within `reach` tracks of its boundary. Returns the unpowered cell
/// names.
pub fn unpowered_cells(
    nl: &PhysNetlist,
    fp: &Floorplan,
    result: &GlobalRouteResult,
    reach: i32,
) -> Vec<String> {
    // Collect all power cells (Ring/Strap shapes).
    let power: Vec<Pt> = result
        .shapes
        .iter()
        .filter(|s| matches!(s.strategy, GlobalStrategy::Ring | GlobalStrategy::Strap))
        .flat_map(|s| s.cells.iter().map(|(_, p)| *p))
        .collect();
    let mut out = Vec::new();
    for cell in &nl.cells {
        let Some(at) = cell.loc else { continue };
        let b = &nl.lib[cell.abs].boundary;
        let fx = at.x - fp.die.x0;
        let fy = at.y - fp.die.y0;
        let footprint = Rect::new(
            Pt::new(fx, fy),
            Pt::new(fx + b.width() - 1, fy + b.height() - 1),
        );
        let grown = footprint.inflated(reach);
        let powered = power.iter().any(|p| grown.contains(*p));
        if !powered {
            out.push(cell.name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Feature, Tool};
    use crate::gen::{generate, PnrGenConfig};
    use crate::place::place;
    use crate::route::{route, RouteConfig};
    use std::collections::BTreeMap;

    fn grid_for(fp: &Floorplan) -> RouteGrid {
        // An empty grid the size of the die.
        RouteGrid::empty(fp.die.width(), fp.die.height())
    }

    #[test]
    fn ring_strap_and_tree_draw_disjoint_shapes() {
        let (_, fp) = generate(&PnrGenConfig::default());
        let mut grid = grid_for(&fp);
        let result = draw_globals(&mut grid, &fp, |_| true);
        assert_eq!(result.shapes.len(), 3, "VDD ring, GND strap, CLK tree");
        assert!(result.claimed > 0);
        assert!(result.skipped.is_empty());
        // Claims are recorded in the grid.
        let marked = grid.cells[0]
            .iter()
            .chain(&grid.cells[1])
            .filter(|&&v| v == GLOBAL)
            .count();
        assert_eq!(marked, result.claimed);
    }

    #[test]
    fn unsupported_strategies_are_skipped_and_cells_go_unpowered() {
        let (mut nl, fp) = generate(&PnrGenConfig::default());
        place(&mut nl, &fp);

        // GridRoute supports rings but not straps.
        let grid_supports = |s: GlobalStrategy| match s {
            GlobalStrategy::Ring => {
                Tool::GridRoute.support(Feature::GlobalRing) != crate::dialect::Support::Unsupported
            }
            GlobalStrategy::Strap => {
                Tool::GridRoute.support(Feature::GlobalStrap)
                    != crate::dialect::Support::Unsupported
            }
            GlobalStrategy::Tree => true,
        };
        let mut g1 = grid_for(&fp);
        let with_ring = draw_globals(&mut g1, &fp, grid_supports);
        assert!(with_ring.skipped.contains(&"GND".to_string()), "strap lost");

        // A tool supporting nothing: everything skipped, all cells
        // unpowered.
        let mut g2 = grid_for(&fp);
        let nothing = draw_globals(&mut g2, &fp, |_| false);
        assert_eq!(nothing.shapes.len(), 0);
        let dead = unpowered_cells(&nl, &fp, &nothing, 3);
        assert_eq!(dead.len(), nl.cells.len(), "no power anywhere");

        // Full support: straps every 16 tracks power everything within
        // reach 16.
        let mut g3 = grid_for(&fp);
        let full = draw_globals(&mut g3, &fp, |_| true);
        let dead_full = unpowered_cells(&nl, &fp, &full, 16);
        assert!(dead_full.is_empty(), "unpowered: {dead_full:?}");
        // Ring-only (GridRoute) powers fewer cells than ring+strap.
        let dead_ring = unpowered_cells(&nl, &fp, &with_ring, 8);
        let dead_all = unpowered_cells(&nl, &fp, &full, 8);
        assert!(dead_ring.len() >= dead_all.len());
    }

    #[test]
    fn signal_routing_still_succeeds_around_globals() {
        let (mut nl, fp) = generate(&PnrGenConfig {
            cells: 12,
            extra_nets: 3,
            ..PnrGenConfig::default()
        });
        place(&mut nl, &fp);
        // Globals drawn first consume resources; signal routing must
        // still complete (straps/rings leave gaps via the other layer).
        let result = route(&nl, &fp, &BTreeMap::new(), RouteConfig::default());
        let baseline = result.routed;
        let mut routed_grid = result.grid;
        let globals = draw_globals(&mut routed_grid, &fp, |_| true);
        assert!(globals.claimed > 0);
        assert!(baseline > 0);
    }
}
