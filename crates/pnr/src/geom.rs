//! Integer geometry for physical design (units: routing-grid tracks).

/// A point on the routing grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pt {
    /// Horizontal track index.
    pub x: i32,
    /// Vertical track index.
    pub y: i32,
}

impl Pt {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Pt { x, y }
    }

    /// Manhattan distance.
    pub fn manhattan(self, other: Pt) -> i32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl std::fmt::Display for Pt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, inclusive of all named tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left column.
    pub x0: i32,
    /// Bottom row.
    pub y0: i32,
    /// Right column (inclusive).
    pub x1: i32,
    /// Top row (inclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rect from two corners (any order).
    pub fn new(a: Pt, b: Pt) -> Self {
        Rect {
            x0: a.x.min(b.x),
            y0: a.y.min(b.y),
            x1: a.x.max(b.x),
            y1: a.y.max(b.y),
        }
    }

    /// Width in tracks.
    pub fn width(self) -> i32 {
        self.x1 - self.x0 + 1
    }

    /// Height in tracks.
    pub fn height(self) -> i32 {
        self.y1 - self.y0 + 1
    }

    /// Area in grid cells.
    pub fn area(self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// True when `p` is inside.
    pub fn contains(self, p: Pt) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// True when the rects share any cell.
    pub fn intersects(self, o: Rect) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }

    /// Translated copy.
    pub fn shifted(self, dx: i32, dy: i32) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Grown by `m` tracks on every side.
    pub fn inflated(self, m: i32) -> Rect {
        Rect {
            x0: self.x0 - m,
            y0: self.y0 - m,
            x1: self.x1 + m,
            y1: self.y1 + m,
        }
    }

    /// Aspect ratio height/width.
    pub fn aspect(self) -> f64 {
        self.height() as f64 / self.width() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(Pt::new(5, 1), Pt::new(2, 4));
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (2, 1, 5, 4));
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 16);
        assert!(r.contains(Pt::new(3, 3)));
        assert!(!r.contains(Pt::new(6, 3)));
    }

    #[test]
    fn intersection_and_inflation() {
        let a = Rect::new(Pt::new(0, 0), Pt::new(3, 3));
        let b = Rect::new(Pt::new(4, 4), Pt::new(6, 6));
        assert!(!a.intersects(b));
        assert!(a.inflated(1).intersects(b));
        assert!(a.shifted(4, 4).intersects(b));
    }

    #[test]
    fn aspect_ratio() {
        let r = Rect::new(Pt::new(0, 0), Pt::new(3, 7));
        assert_eq!(r.aspect(), 2.0);
    }
}
