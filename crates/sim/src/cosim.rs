//! Co-simulation of two kernels over a lossy value-set bridge.
//!
//! Section 3.1: "Making two simulation tools work together, specially a
//! Verilog HDL - VHDL co-simulation, is typically problematic...
//! Inconsistencies in the signal value set (e.g. 0, 1, x, and z) and in
//! the simulation cycle definition are common sources of problems."
//!
//! Kernel **A** plays the Verilog side (four-value). Kernel **B** plays
//! the VHDL side: its boundary outputs travel as nine-value
//! [`Std9`] characters, and outputs marked *weak* encode as `L`/`H`
//! (pulled levels). A [`Translation::Full`] bridge resolves weak levels
//! correctly; a [`Translation::Naive`] bridge only understands the four
//! shared characters and turns everything else into X — the classic
//! co-simulation failure.

use std::fmt;

use crate::kernel::{Kernel, SimError};
use crate::logic::{Logic, Std9, Value};

/// How the bridge translates nine-value characters into the four-value
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Proper table: weak levels resolve (`L`→0, `H`→1, `W/U/-`→X).
    Full,
    /// Only `0 1 X Z` understood; everything else becomes X.
    Naive,
}

/// One boundary connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Source signal name (in the sending kernel).
    pub from: String,
    /// Destination signal name (in the receiving kernel).
    pub to: String,
    /// For B→A links: the B output drives weak levels (`L`/`H`).
    pub weak: bool,
}

impl Link {
    /// Creates a strong link.
    pub fn new(from: impl Into<String>, to: impl Into<String>) -> Self {
        Link {
            from: from.into(),
            to: to.into(),
            weak: false,
        }
    }

    /// Marks the link's source as a weak (pulled) VHDL output.
    pub fn weak(mut self) -> Self {
        self.weak = true;
        self
    }
}

/// A record of one value crossing the bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeEvent {
    /// Simulation time.
    pub time: u64,
    /// Link index and direction (`true` = B→A).
    pub b_to_a: bool,
    /// Destination signal name.
    pub to: String,
    /// The nine-value characters on the wire protocol (MSB first).
    pub wire: String,
    /// The four-value result delivered.
    pub delivered: String,
}

impl fmt::Display for BridgeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={} {} {} wire={} -> {}",
            self.time,
            if self.b_to_a { "B->A" } else { "A->B" },
            self.to,
            self.wire,
            self.delivered
        )
    }
}

/// A two-kernel co-simulation.
pub struct CoSim {
    /// The Verilog-side kernel.
    pub a: Kernel,
    /// The VHDL-side kernel.
    pub b: Kernel,
    a_to_b: Vec<Link>,
    b_to_a: Vec<Link>,
    translation: Translation,
    /// Every value that crossed the bridge.
    pub trace: Vec<BridgeEvent>,
}

impl CoSim {
    /// Creates a co-simulation over two kernels.
    pub fn new(a: Kernel, b: Kernel, translation: Translation) -> Self {
        CoSim {
            a,
            b,
            a_to_b: Vec::new(),
            b_to_a: Vec::new(),
            translation,
            trace: Vec::new(),
        }
    }

    /// Adds an A→B boundary connection.
    pub fn link_a_to_b(&mut self, link: Link) {
        self.a_to_b.push(link);
    }

    /// Adds a B→A boundary connection.
    pub fn link_b_to_a(&mut self, link: Link) {
        self.b_to_a.push(link);
    }

    fn decode(&self, s: Std9) -> Logic {
        match self.translation {
            Translation::Full => s.to_logic_full(),
            Translation::Naive => s.to_logic_naive(),
        }
    }

    /// Exchanges boundary values once. Returns `true` when anything
    /// changed.
    ///
    /// # Errors
    ///
    /// Fails when a link names an unknown signal.
    fn exchange(&mut self, time: u64) -> Result<bool, SimError> {
        let mut changed = false;
        // A -> B: Verilog values encode as strong nine-value chars; the
        // B side accepts the full alphabet, so this hop is lossless.
        for link in &self.a_to_b {
            let v = self.a.peek_name(&link.from)?.clone();
            let wire: String = (0..v.width())
                .rev()
                .map(|i| Std9::from_logic(v.get(i), false).to_char())
                .collect();
            let delivered = decode_wire(&wire, |s| s.to_logic_full());
            if &delivered != self.b.peek_name(&link.to)? {
                self.b.poke_name(&link.to, delivered.clone())?;
                changed = true;
                self.trace.push(BridgeEvent {
                    time,
                    b_to_a: false,
                    to: link.to.clone(),
                    wire,
                    delivered: delivered.to_string_msb(),
                });
            }
        }
        // B -> A: weak outputs encode as L/H; the translation mode
        // decides whether they survive.
        for link in &self.b_to_a {
            let v = self.b.peek_name(&link.from)?.clone();
            let wire: String = (0..v.width())
                .rev()
                .map(|i| Std9::from_logic(v.get(i), link.weak).to_char())
                .collect();
            let delivered = decode_wire(&wire, |s| self.decode(s));
            if &delivered != self.a.peek_name(&link.to)? {
                self.a.poke_name(&link.to, delivered.clone())?;
                changed = true;
                self.trace.push(BridgeEvent {
                    time,
                    b_to_a: true,
                    to: link.to.clone(),
                    wire,
                    delivered: delivered.to_string_msb(),
                });
            }
        }
        Ok(changed)
    }

    /// Runs both kernels to `t`, iterating boundary exchange to a
    /// fixpoint.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; reports a runaway when the boundary
    /// oscillates.
    pub fn run_until(&mut self, t: u64) -> Result<(), SimError> {
        for round in 0..64 {
            self.a.run_until(t)?;
            self.b.run_until(t)?;
            if !self.exchange(t)? {
                return Ok(());
            }
            if round == 63 {
                return Err(SimError::Runaway { time: t });
            }
        }
        Ok(())
    }
}

fn decode_wire(wire: &str, f: impl Fn(Std9) -> Logic) -> Value {
    let s: String = wire
        .chars()
        .map(|c| Std9::from_char(c).map(|v| f(v).to_char()).unwrap_or('x'))
        .collect();
    Value::from_str_msb(&s).unwrap_or_else(|| Value::bit(Logic::X))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use crate::kernel::SchedulerPolicy;
    use hdl::parser::parse;

    /// A: gates data with the enable delivered from B.
    const SIDE_A: &str = r#"
        module side_a(input d, input en_in, output y);
          assign y = d & en_in;
        endmodule
    "#;

    /// B: produces an always-on enable (exported through a weak,
    /// pulled-up output in the VHDL sense).
    const SIDE_B: &str = r#"
        module side_b(input tick, output en);
          assign en = 1;
        endmodule
    "#;

    fn build(translation: Translation) -> CoSim {
        let a = Kernel::new(
            compile_unit(&parse(SIDE_A).unwrap(), "side_a").unwrap(),
            SchedulerPolicy::sim_a(),
        );
        let b = Kernel::new(
            compile_unit(&parse(SIDE_B).unwrap(), "side_b").unwrap(),
            SchedulerPolicy::sim_a(),
        );
        let mut cs = CoSim::new(a, b, translation);
        cs.link_b_to_a(Link::new("en", "en_in").weak());
        cs
    }

    #[test]
    fn full_translation_delivers_weak_levels() {
        let mut cs = build(Translation::Full);
        cs.a.poke_name("d", Value::bit(Logic::One)).unwrap();
        cs.run_until(10).unwrap();
        assert_eq!(cs.a.peek_name("y").unwrap().get(0), Logic::One);
        // The wire protocol really carried an H.
        assert!(cs.trace.iter().any(|e| e.wire == "H"), "{:?}", cs.trace);
    }

    #[test]
    fn naive_translation_corrupts_weak_levels() {
        let mut cs = build(Translation::Naive);
        cs.a.poke_name("d", Value::bit(Logic::One)).unwrap();
        cs.run_until(10).unwrap();
        // H decoded naively becomes X, so the AND output is X.
        assert_eq!(cs.a.peek_name("y").unwrap().get(0), Logic::X);
    }

    #[test]
    fn strong_links_survive_either_translation() {
        for tr in [Translation::Full, Translation::Naive] {
            let a = Kernel::new(
                compile_unit(&parse(SIDE_A).unwrap(), "side_a").unwrap(),
                SchedulerPolicy::sim_a(),
            );
            let b = Kernel::new(
                compile_unit(&parse(SIDE_B).unwrap(), "side_b").unwrap(),
                SchedulerPolicy::sim_a(),
            );
            let mut cs = CoSim::new(a, b, tr);
            cs.link_b_to_a(Link::new("en", "en_in"));
            cs.a.poke_name("d", Value::bit(Logic::One)).unwrap();
            cs.run_until(10).unwrap();
            assert_eq!(cs.a.peek_name("y").unwrap().get(0), Logic::One);
        }
    }

    #[test]
    fn a_to_b_hop_is_lossless() {
        let a = Kernel::new(
            compile_unit(&parse(SIDE_A).unwrap(), "side_a").unwrap(),
            SchedulerPolicy::sim_a(),
        );
        let b = Kernel::new(
            compile_unit(
                &parse("module echo(input tick, output o); assign o = tick; endmodule").unwrap(),
                "echo",
            )
            .unwrap(),
            SchedulerPolicy::sim_a(),
        );
        let mut cs = CoSim::new(a, b, Translation::Naive);
        cs.link_a_to_b(Link::new("d", "tick"));
        cs.a.poke_name("d", Value::bit(Logic::One)).unwrap();
        cs.run_until(5).unwrap();
        assert_eq!(cs.b.peek_name("o").unwrap().get(0), Logic::One);
    }

    #[test]
    fn bad_link_names_error() {
        let mut cs = build(Translation::Full);
        cs.link_b_to_a(Link::new("ghost", "en_in"));
        assert!(cs.run_until(1).is_err());
    }
}
