//! Four-value logic and vectors, plus the nine-value co-simulation
//! alphabet.
//!
//! Section 3.1: "Inconsistencies in the signal value set (e.g. 0, 1, x,
//! and z) ... are common sources of problems" in co-simulation. The
//! Verilog-side set is [`Logic`]; the VHDL-side set is [`Std9`]; the
//! translation (or mistranslation) between them lives in
//! [`crate::cosim`].

use std::fmt;

/// One Verilog-style logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Logic {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown.
    #[default]
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// The four values.
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Character form (`0`, `1`, `x`, `z`).
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses a character form.
    pub fn from_char(c: char) -> Option<Logic> {
        match c.to_ascii_lowercase() {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' => Some(Logic::X),
            'z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// True for `x` or `z`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Verilog AND table (z behaves as x).
    pub fn and(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Verilog OR table.
    pub fn or(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Verilog XOR table.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::Zero, b) => b,
            (Logic::One, Logic::Zero) => Logic::One,
            (Logic::One, Logic::One) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Verilog NOT table.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self.norm() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Z collapses to X for gate inputs.
    fn norm(self) -> Logic {
        if self == Logic::Z {
            Logic::X
        } else {
            self
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A logic vector, LSB first (`bits[0]` is bit 0).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value {
    bits: Vec<Logic>,
}

impl Value {
    /// All-X value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn unknown(width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        Value {
            bits: vec![Logic::X; width],
        }
    }

    /// All-Z value of the given width.
    pub fn high_z(width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        Value {
            bits: vec![Logic::Z; width],
        }
    }

    /// From an unsigned integer, truncated/zero-extended to `width`.
    pub fn from_u64(v: u64, width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        let bits = (0..width)
            .map(|i| {
                if i < 64 && (v >> i) & 1 == 1 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            })
            .collect();
        Value { bits }
    }

    /// A single-bit value.
    pub fn bit(b: Logic) -> Value {
        Value { bits: vec![b] }
    }

    /// From a character string, MSB first (e.g. `"10xz"`).
    pub fn from_str_msb(s: &str) -> Option<Value> {
        if s.is_empty() {
            return None;
        }
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            bits.push(Logic::from_char(c)?);
        }
        Some(Value { bits })
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[Logic] {
        &self.bits
    }

    /// Bit `i` (LSB = 0); X when out of range.
    pub fn get(&self, i: usize) -> Logic {
        self.bits.get(i).copied().unwrap_or(Logic::X)
    }

    /// Returns a copy resized to `width` (zero-extended — or truncated).
    pub fn resized(&self, width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        let mut bits = self.bits.clone();
        bits.resize(width, Logic::Zero);
        bits.truncate(width);
        Value { bits }
    }

    /// True when any bit is x or z.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| b.is_unknown())
    }

    /// Numeric interpretation, if fully known.
    pub fn as_u64(&self) -> Option<u64> {
        if self.has_unknown() || self.width() > 64 {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            if *b == Logic::One {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// Verilog truthiness: `Some(true)` when any bit is 1,
    /// `Some(false)` when all bits are 0, `None` (unknown) otherwise.
    pub fn truthy(&self) -> Option<bool> {
        if self.bits.contains(&Logic::One) {
            return Some(true);
        }
        if self.bits.iter().all(|b| *b == Logic::Zero) {
            return Some(false);
        }
        None
    }

    fn zip_with(&self, other: &Value, f: fn(Logic, Logic) -> Logic) -> Value {
        let w = self.width().max(other.width());
        let a = self.resized(w);
        let b = other.resized(w);
        Value {
            bits: a.bits.iter().zip(&b.bits).map(|(x, y)| f(*x, *y)).collect(),
        }
    }

    /// Bitwise AND (widths zero-extended to match).
    pub fn and(&self, other: &Value) -> Value {
        self.zip_with(other, Logic::and)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Value) -> Value {
        self.zip_with(other, Logic::or)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Value) -> Value {
        self.zip_with(other, Logic::xor)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Value {
        Value {
            bits: self.bits.iter().map(|b| b.not()).collect(),
        }
    }

    /// Case/logic equality returning a 1-bit value: `1` when equal, `0`
    /// when a known bit differs, `x` when unknowns block the decision.
    pub fn logic_eq(&self, other: &Value) -> Logic {
        let w = self.width().max(other.width());
        let a = self.resized(w);
        let b = other.resized(w);
        let mut unknown = false;
        for (x, y) in a.bits.iter().zip(&b.bits) {
            if x.is_unknown() || y.is_unknown() {
                unknown = true;
            } else if x != y {
                return Logic::Zero;
            }
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction AND.
    pub fn reduce_and(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::One, Logic::and)
    }

    /// Reduction OR.
    pub fn reduce_or(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::Zero, Logic::or)
    }

    /// The conditional-merge used when a ternary condition is unknown:
    /// positions where both arms agree keep their value, others go X.
    pub fn merge(&self, other: &Value) -> Value {
        self.zip_with(other, |a, b| if a == b { a } else { Logic::X })
    }

    /// MSB-first rendering (`4'b10xz` prints as `10xz`).
    pub fn to_string_msb(&self) -> String {
        self.bits.iter().rev().map(|b| b.to_char()).collect()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_msb())
    }
}

/// One VHDL-style `std_logic` value (the nine-value alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Std9 {
    /// Uninitialized.
    U,
    /// Forcing unknown.
    X,
    /// Forcing zero.
    Zero,
    /// Forcing one.
    One,
    /// High impedance.
    Z,
    /// Weak unknown.
    W,
    /// Weak zero.
    L,
    /// Weak one.
    H,
    /// Don't care.
    DontCare,
}

impl Std9 {
    /// Character form (`U X 0 1 Z W L H -`).
    pub fn to_char(self) -> char {
        match self {
            Std9::U => 'U',
            Std9::X => 'X',
            Std9::Zero => '0',
            Std9::One => '1',
            Std9::Z => 'Z',
            Std9::W => 'W',
            Std9::L => 'L',
            Std9::H => 'H',
            Std9::DontCare => '-',
        }
    }

    /// Parses a character form.
    pub fn from_char(c: char) -> Option<Std9> {
        match c {
            'U' => Some(Std9::U),
            'X' => Some(Std9::X),
            '0' => Some(Std9::Zero),
            '1' => Some(Std9::One),
            'Z' => Some(Std9::Z),
            'W' => Some(Std9::W),
            'L' => Some(Std9::L),
            'H' => Some(Std9::H),
            '-' => Some(Std9::DontCare),
            _ => None,
        }
    }

    /// The *correct* translation into the four-value set: weak levels
    /// resolve to their strong levels, everything unknown-ish to X.
    pub fn to_logic_full(self) -> Logic {
        match self {
            Std9::Zero | Std9::L => Logic::Zero,
            Std9::One | Std9::H => Logic::One,
            Std9::Z => Logic::Z,
            Std9::U | Std9::X | Std9::W | Std9::DontCare => Logic::X,
        }
    }

    /// The *naive* translation that only understands the characters the
    /// Verilog set shares (`0 1 X Z`) and maps everything else to X —
    /// losing weak levels, the classic co-simulation defect.
    pub fn to_logic_naive(self) -> Logic {
        match self {
            Std9::Zero => Logic::Zero,
            Std9::One => Logic::One,
            Std9::Z => Logic::Z,
            _ => Logic::X,
        }
    }

    /// Encodes a four-value logic level into the nine-value set;
    /// `weak` drives the weak levels `L`/`H` instead of `0`/`1` (a
    /// pulled-up/down VHDL output).
    pub fn from_logic(l: Logic, weak: bool) -> Std9 {
        match (l, weak) {
            (Logic::Zero, false) => Std9::Zero,
            (Logic::One, false) => Std9::One,
            (Logic::Zero, true) => Std9::L,
            (Logic::One, true) => Std9::H,
            (Logic::Z, _) => Std9::Z,
            (Logic::X, _) => Std9::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_tables_match_verilog() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Z.and(One), X, "z behaves as x");
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(X), X);
    }

    #[test]
    fn value_numeric_round_trip() {
        let v = Value::from_u64(0b1010, 4);
        assert_eq!(v.to_string_msb(), "1010");
        assert_eq!(v.as_u64(), Some(10));
        assert_eq!(v.get(1), Logic::One);
        assert_eq!(v.get(9), Logic::X, "out of range reads x");
    }

    #[test]
    fn string_parsing_handles_unknowns() {
        let v = Value::from_str_msb("1x0z").unwrap();
        assert!(v.has_unknown());
        assert_eq!(v.as_u64(), None);
        assert_eq!(v.get(3), Logic::One);
        assert_eq!(v.get(0), Logic::Z);
        assert!(Value::from_str_msb("10q1").is_none());
        assert!(Value::from_str_msb("").is_none());
    }

    #[test]
    fn truthiness_is_three_valued() {
        assert_eq!(Value::from_u64(4, 3).truthy(), Some(true));
        assert_eq!(Value::from_u64(0, 3).truthy(), Some(false));
        assert_eq!(Value::from_str_msb("0x0").unwrap().truthy(), None);
        assert_eq!(Value::from_str_msb("1x0").unwrap().truthy(), Some(true));
    }

    #[test]
    fn logic_eq_three_valued() {
        let a = Value::from_u64(5, 3);
        assert_eq!(a.logic_eq(&Value::from_u64(5, 3)), Logic::One);
        assert_eq!(a.logic_eq(&Value::from_u64(4, 3)), Logic::Zero);
        assert_eq!(a.logic_eq(&Value::from_str_msb("1x1").unwrap()), Logic::X);
        // A known mismatch beats an unknown elsewhere.
        assert_eq!(
            Value::from_str_msb("0x1")
                .unwrap()
                .logic_eq(&Value::from_str_msb("1x1").unwrap()),
            Logic::Zero
        );
    }

    #[test]
    fn widths_extend_with_zero() {
        let a = Value::from_u64(1, 1);
        let b = Value::from_u64(0b10, 2);
        assert_eq!(a.or(&b).as_u64(), Some(0b11));
        assert_eq!(a.and(&b).as_u64(), Some(0));
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::from_u64(0b111, 3).reduce_and(), Logic::One);
        assert_eq!(Value::from_u64(0b110, 3).reduce_and(), Logic::Zero);
        assert_eq!(Value::from_u64(0, 3).reduce_or(), Logic::Zero);
        assert_eq!(Value::from_str_msb("x1").unwrap().reduce_or(), Logic::One);
    }

    #[test]
    fn merge_keeps_agreement() {
        let a = Value::from_u64(0b1100, 4);
        let b = Value::from_u64(0b1010, 4);
        assert_eq!(a.merge(&b).to_string_msb(), "1xx0");
    }

    #[test]
    fn std9_translations_differ_exactly_on_weak_levels() {
        for s in [
            Std9::U,
            Std9::X,
            Std9::Zero,
            Std9::One,
            Std9::Z,
            Std9::W,
            Std9::L,
            Std9::H,
            Std9::DontCare,
        ] {
            let full = s.to_logic_full();
            let naive = s.to_logic_naive();
            match s {
                Std9::L | Std9::H => {
                    assert_ne!(full, naive, "{s:?} must be lost by the naive table");
                    assert_eq!(naive, Logic::X);
                }
                _ => assert_eq!(full, naive),
            }
        }
    }

    #[test]
    fn std9_char_round_trip() {
        for c in ['U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'] {
            assert_eq!(Std9::from_char(c).unwrap().to_char(), c);
        }
        assert!(Std9::from_char('q').is_none());
    }
}
