//! Four-value logic and packed two-bitplane vectors, plus the
//! nine-value co-simulation alphabet.
//!
//! Section 3.1: "Inconsistencies in the signal value set (e.g. 0, 1, x,
//! and z) ... are common sources of problems" in co-simulation. The
//! Verilog-side set is [`Logic`]; the VHDL-side set is [`Std9`]; the
//! translation (or mistranslation) between them lives in
//! [`crate::cosim`].
//!
//! ## Representation
//!
//! A [`Value`] stores its bits in **two bitplanes** — a *val* plane and
//! an *unknown* plane — so the four-value alphabet packs to two machine
//! bits per logic bit:
//!
//! | logic | val | unknown |
//! |-------|-----|---------|
//! | `0`   |  0  |    0    |
//! | `1`   |  1  |    0    |
//! | `x`   |  0  |    1    |
//! | `z`   |  1  |    1    |
//!
//! Widths up to 64 live inline as two `u64` words (cloning is a 16-byte
//! copy, no heap traffic); wider vectors spill to one boxed slice
//! holding the val words followed by the unknown words. The [`Logic`]
//! truth tables become word-parallel plane arithmetic: an AND over a
//! 64-bit vector is a handful of `u64` ops instead of 64 `match`
//! dispatches.
//!
//! The original per-bit implementation is retained in [`reference`] and
//! can be forced for a thread with [`reference::force`]; kernel-level
//! tests pin the packed path by demanding byte-identical waveforms
//! between the two.

use std::fmt;

/// One Verilog-style logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Logic {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown.
    #[default]
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// The four values.
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Character form (`0`, `1`, `x`, `z`).
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses a character form.
    pub fn from_char(c: char) -> Option<Logic> {
        match c.to_ascii_lowercase() {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' => Some(Logic::X),
            'z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// True for `x` or `z`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// The two-plane encoding `(val, unknown)`.
    #[inline]
    pub fn planes(self) -> (bool, bool) {
        match self {
            Logic::Zero => (false, false),
            Logic::One => (true, false),
            Logic::X => (false, true),
            Logic::Z => (true, true),
        }
    }

    /// Decodes the two-plane encoding.
    #[inline]
    pub fn from_planes(val: bool, unknown: bool) -> Logic {
        match (val, unknown) {
            (false, false) => Logic::Zero,
            (true, false) => Logic::One,
            (false, true) => Logic::X,
            (true, true) => Logic::Z,
        }
    }

    /// Verilog AND table (z behaves as x).
    pub fn and(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Verilog OR table.
    pub fn or(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Verilog XOR table.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::Zero, b) => b,
            (Logic::One, Logic::Zero) => Logic::One,
            (Logic::One, Logic::One) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Verilog NOT table.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self.norm() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Z collapses to X for gate inputs.
    fn norm(self) -> Logic {
        if self == Logic::Z {
            Logic::X
        } else {
            self
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Words needed for `width` bits.
#[inline]
fn word_count(width: usize) -> usize {
    width.div_ceil(64)
}

/// Mask of the valid bits in the last (topmost) word.
#[inline]
fn top_mask(width: usize) -> u64 {
    match width % 64 {
        0 => u64::MAX,
        r => (1u64 << r) - 1,
    }
}

/// Bitplane storage. `Small` covers widths 1..=64 inline; `Wide` holds
/// `[val words.., unknown words..]` in one allocation. The constructors
/// keep the choice canonical (`Small` iff width ≤ 64) and every bit at
/// or above `width` zero in both planes, so derived `Eq`/`Hash` are
/// semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small { val: u64, unk: u64 },
    Wide(Box<[u64]>),
}

/// A logic vector, LSB first (bit 0 is the least significant bit),
/// packed as two bitplanes (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value {
    width: u32,
    repr: Repr,
}

impl Value {
    /// Builds a canonical value from already-masked planes.
    #[inline]
    fn from_planes_small(width: usize, val: u64, unk: u64) -> Value {
        debug_assert!((1..=64).contains(&width));
        let m = top_mask(width);
        Value {
            width: width as u32,
            repr: Repr::Small {
                val: val & m,
                unk: unk & m,
            },
        }
    }

    /// Builds a wide value from per-word planes (masked here).
    fn from_planes_wide(width: usize, mut val: Vec<u64>, mut unk: Vec<u64>) -> Value {
        debug_assert!(width > 64);
        let n = word_count(width);
        val.resize(n, 0);
        unk.resize(n, 0);
        let m = top_mask(width);
        val[n - 1] &= m;
        unk[n - 1] &= m;
        val.extend_from_slice(&unk);
        Value {
            width: width as u32,
            repr: Repr::Wide(val.into_boxed_slice()),
        }
    }

    /// All-zero planes of the given width.
    fn zeros(width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        if width <= 64 {
            Value::from_planes_small(width, 0, 0)
        } else {
            Value::from_planes_wide(
                width,
                vec![0; word_count(width)],
                vec![0; word_count(width)],
            )
        }
    }

    /// Word `i` of the val plane (zero beyond storage).
    #[inline]
    fn val_word(&self, i: usize) -> u64 {
        match &self.repr {
            Repr::Small { val, .. } => {
                if i == 0 {
                    *val
                } else {
                    0
                }
            }
            Repr::Wide(w) => *w.get(i).unwrap_or(&0),
        }
    }

    /// Word `i` of the unknown plane (zero beyond storage).
    #[inline]
    fn unk_word(&self, i: usize) -> u64 {
        match &self.repr {
            Repr::Small { unk, .. } => {
                if i == 0 {
                    *unk
                } else {
                    0
                }
            }
            Repr::Wide(w) => {
                let n = w.len() / 2;
                *w.get(n + i).unwrap_or(&0)
            }
        }
    }

    /// All-X value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn unknown(width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        if width <= 64 {
            Value::from_planes_small(width, 0, u64::MAX)
        } else {
            let n = word_count(width);
            Value::from_planes_wide(width, vec![0; n], vec![u64::MAX; n])
        }
    }

    /// All-Z value of the given width.
    pub fn high_z(width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        if width <= 64 {
            Value::from_planes_small(width, u64::MAX, u64::MAX)
        } else {
            let n = word_count(width);
            Value::from_planes_wide(width, vec![u64::MAX; n], vec![u64::MAX; n])
        }
    }

    /// From an unsigned integer, truncated/zero-extended to `width`.
    pub fn from_u64(v: u64, width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        if width <= 64 {
            Value::from_planes_small(width, v, 0)
        } else {
            let n = word_count(width);
            let mut val = vec![0; n];
            val[0] = v;
            Value::from_planes_wide(width, val, vec![0; n])
        }
    }

    /// A single-bit value.
    pub fn bit(b: Logic) -> Value {
        let (v, u) = b.planes();
        Value::from_planes_small(1, v as u64, u as u64)
    }

    /// From a bit slice, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[Logic]) -> Value {
        assert!(!bits.is_empty(), "zero-width value");
        let mut out = Value::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            out.set_bit(i, *b);
        }
        out
    }

    /// From a character string, MSB first (e.g. `"10xz"`).
    pub fn from_str_msb(s: &str) -> Option<Value> {
        if s.is_empty() {
            return None;
        }
        let mut out = Value::zeros(s.chars().count());
        for (i, c) in s.chars().rev().enumerate() {
            out.set_bit(i, Logic::from_char(c)?);
        }
        Some(out)
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Bit `i` (LSB = 0); X when out of range.
    pub fn get(&self, i: usize) -> Logic {
        if i >= self.width() {
            return Logic::X;
        }
        let (w, b) = (i / 64, i % 64);
        Logic::from_planes(
            (self.val_word(w) >> b) & 1 == 1,
            (self.unk_word(w) >> b) & 1 == 1,
        )
    }

    /// Sets bit `i`; out-of-range writes are ignored.
    pub fn set_bit(&mut self, i: usize, b: Logic) {
        if i >= self.width() {
            return;
        }
        let (v, u) = b.planes();
        let (w, bit) = (i / 64, i % 64);
        let m = 1u64 << bit;
        match &mut self.repr {
            Repr::Small { val, unk } => {
                *val = (*val & !m) | if v { m } else { 0 };
                *unk = (*unk & !m) | if u { m } else { 0 };
            }
            Repr::Wide(words) => {
                let n = words.len() / 2;
                words[w] = (words[w] & !m) | if v { m } else { 0 };
                words[n + w] = (words[n + w] & !m) | if u { m } else { 0 };
            }
        }
    }

    /// The bits as a vector, LSB first (materialized; the packed planes
    /// are the primary representation).
    pub fn to_bits(&self) -> Vec<Logic> {
        (0..self.width()).map(|i| self.get(i)).collect()
    }

    /// Iterates the bits, LSB first.
    pub fn iter_bits(&self) -> impl Iterator<Item = Logic> + '_ {
        (0..self.width()).map(|i| self.get(i))
    }

    /// Returns a copy resized to `width` (zero-extended — or truncated).
    pub fn resized(&self, width: usize) -> Value {
        assert!(width > 0, "zero-width value");
        if width == self.width() {
            return self.clone();
        }
        if width <= 64 {
            Value::from_planes_small(width, self.val_word(0), self.unk_word(0))
        } else {
            let n = word_count(width);
            let val: Vec<u64> = (0..n).map(|i| self.val_word(i)).collect();
            let unk: Vec<u64> = (0..n).map(|i| self.unk_word(i)).collect();
            Value::from_planes_wide(width, val, unk)
        }
    }

    /// True when any bit is x or z.
    pub fn has_unknown(&self) -> bool {
        match &self.repr {
            Repr::Small { unk, .. } => *unk != 0,
            Repr::Wide(w) => w[w.len() / 2..].iter().any(|x| *x != 0),
        }
    }

    /// Numeric interpretation, if fully known.
    pub fn as_u64(&self) -> Option<u64> {
        if self.has_unknown() || self.width() > 64 {
            return None;
        }
        Some(self.val_word(0))
    }

    /// Verilog truthiness: `Some(true)` when any bit is 1,
    /// `Some(false)` when all bits are 0, `None` (unknown) otherwise.
    pub fn truthy(&self) -> Option<bool> {
        let n = word_count(self.width());
        let mut any_unknown = false;
        for i in 0..n {
            let (v, u) = (self.val_word(i), self.unk_word(i));
            if v & !u != 0 {
                return Some(true); // a known 1 decides it
            }
            any_unknown |= u != 0;
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    /// Applies a word-parallel binary op after zero-extending both
    /// operands to the wider width. `f` maps `(val_a, unk_a, val_b,
    /// unk_b)` to `(val_out, unk_out)`; out-of-range words read as
    /// known-zero, matching the per-bit zero-extension semantics.
    #[inline]
    fn bitwise(&self, other: &Value, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> Value {
        let w = self.width().max(other.width());
        if w <= 64 {
            let (v, u) = f(
                self.val_word(0),
                self.unk_word(0),
                other.val_word(0),
                other.unk_word(0),
            );
            Value::from_planes_small(w, v, u)
        } else {
            let n = word_count(w);
            let mut val = Vec::with_capacity(n);
            let mut unk = Vec::with_capacity(n);
            for i in 0..n {
                let (v, u) = f(
                    self.val_word(i),
                    self.unk_word(i),
                    other.val_word(i),
                    other.unk_word(i),
                );
                val.push(v);
                unk.push(u);
            }
            Value::from_planes_wide(w, val, unk)
        }
    }

    /// Bitwise AND (widths zero-extended to match).
    pub fn and(&self, other: &Value) -> Value {
        if reference::active() {
            return reference::zip(self, other, Logic::and);
        }
        self.bitwise(other, |va, ua, vb, ub| {
            // Known 1 where both known-1; known 0 where either known-0;
            // X everywhere else (z collapses to x through the unknown
            // plane).
            let one = (va & !ua) & (vb & !ub);
            let zero = (!va & !ua) | (!vb & !ub);
            (one, !(one | zero))
        })
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Value) -> Value {
        if reference::active() {
            return reference::zip(self, other, Logic::or);
        }
        self.bitwise(other, |va, ua, vb, ub| {
            let one = (va & !ua) | (vb & !ub);
            let zero = (!va & !ua) & (!vb & !ub);
            (one, !(one | zero))
        })
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Value) -> Value {
        if reference::active() {
            return reference::zip(self, other, Logic::xor);
        }
        self.bitwise(other, |va, ua, vb, ub| {
            let known = !ua & !ub;
            ((va ^ vb) & known, !known)
        })
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Value {
        if reference::active() {
            return Value::from_bits(&self.to_bits().iter().map(|b| b.not()).collect::<Vec<_>>());
        }
        let w = self.width();
        if w <= 64 {
            let (v, u) = (self.val_word(0), self.unk_word(0));
            Value::from_planes_small(w, !v & !u, u)
        } else {
            let n = word_count(w);
            let val: Vec<u64> = (0..n)
                .map(|i| !self.val_word(i) & !self.unk_word(i))
                .collect();
            let unk: Vec<u64> = (0..n).map(|i| self.unk_word(i)).collect();
            Value::from_planes_wide(w, val, unk)
        }
    }

    /// Case/logic equality returning a 1-bit value: `1` when equal, `0`
    /// when a known bit differs, `x` when unknowns block the decision.
    pub fn logic_eq(&self, other: &Value) -> Logic {
        if reference::active() {
            return reference::logic_eq(self, other);
        }
        let w = self.width().max(other.width());
        let n = word_count(w);
        let mut any_unknown = false;
        for i in 0..n {
            let (va, ua) = (self.val_word(i), self.unk_word(i));
            let (vb, ub) = (other.val_word(i), other.unk_word(i));
            if (va ^ vb) & !(ua | ub) != 0 {
                return Logic::Zero; // a known mismatch decides it
            }
            any_unknown |= (ua | ub) != 0;
        }
        if any_unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction AND.
    pub fn reduce_and(&self) -> Logic {
        if reference::active() {
            return self.to_bits().into_iter().fold(Logic::One, Logic::and);
        }
        let n = word_count(self.width());
        let mut any_unknown = false;
        for i in 0..n {
            let (v, u) = (self.val_word(i), self.unk_word(i));
            let in_range = if i == n - 1 {
                top_mask(self.width())
            } else {
                u64::MAX
            };
            if !v & !u & in_range != 0 {
                return Logic::Zero; // a known 0 dominates
            }
            any_unknown |= u != 0;
        }
        if any_unknown {
            Logic::X
        } else {
            Logic::One
        }
    }

    /// Reduction OR.
    pub fn reduce_or(&self) -> Logic {
        if reference::active() {
            return self.to_bits().into_iter().fold(Logic::Zero, Logic::or);
        }
        match self.truthy() {
            Some(true) => Logic::One,
            Some(false) => Logic::Zero,
            None => Logic::X,
        }
    }

    /// The conditional-merge used when a ternary condition is unknown:
    /// positions where both arms agree keep their value, others go X.
    pub fn merge(&self, other: &Value) -> Value {
        if reference::active() {
            return reference::zip(self, other, |a, b| if a == b { a } else { Logic::X });
        }
        self.bitwise(other, |va, ua, vb, ub| {
            // Bits identical in both planes survive; disagreement is X
            // (val 0, unknown 1).
            let same = !((va ^ vb) | (ua ^ ub));
            (va & same, (ua & same) | !same)
        })
    }

    /// Concatenation, MSB-first operand order (the first item occupies
    /// the top bits), matching Verilog `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn concat_msb(items: &[&Value]) -> Value {
        let width: usize = items.iter().map(|v| v.width()).sum();
        assert!(width > 0, "zero-width concatenation");
        let mut out = Value::zeros(width);
        // Walk from the last operand (lowest bits) upward, OR-ing each
        // operand's words in at its bit offset.
        let mut offset = 0usize;
        for item in items.iter().rev() {
            out.blit(item, offset);
            offset += item.width();
        }
        out
    }

    /// ORs `src`'s planes into `self` starting at bit `offset`. The
    /// destination bits must be zero (fresh from [`Value::zeros`]).
    fn blit(&mut self, src: &Value, offset: usize) {
        let (shift, word0) = (offset % 64, offset / 64);
        let src_words = word_count(src.width());
        for i in 0..src_words {
            let (v, u) = (src.val_word(i), src.unk_word(i));
            self.or_word(word0 + i, v << shift, u << shift);
            if shift != 0 {
                self.or_word(word0 + i + 1, v >> (64 - shift), u >> (64 - shift));
            }
        }
    }

    /// ORs one word into both planes at word index `w` (ignoring
    /// out-of-range spill).
    fn or_word(&mut self, w: usize, v: u64, u: u64) {
        match &mut self.repr {
            Repr::Small { val, unk } => {
                if w == 0 {
                    *val |= v & top_mask(self.width as usize);
                    *unk |= u & top_mask(self.width as usize);
                }
            }
            Repr::Wide(words) => {
                let n = words.len() / 2;
                if w < n {
                    let m = if w == n - 1 {
                        top_mask(self.width as usize)
                    } else {
                        u64::MAX
                    };
                    words[w] |= v & m;
                    words[n + w] |= u & m;
                }
            }
        }
    }

    /// MSB-first rendering (`4'b10xz` prints as `10xz`).
    pub fn to_string_msb(&self) -> String {
        (0..self.width())
            .rev()
            .map(|i| self.get(i).to_char())
            .collect()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_msb())
    }
}

/// The retained per-bit reference path.
///
/// Every packed truth-table op ([`Value::and`], [`Value::or`],
/// [`Value::xor`], [`Value::not`], [`Value::logic_eq`],
/// [`Value::merge`], the reductions) checks a thread-local flag and,
/// when [`force`] is active on the calling thread, routes through the
/// original per-bit [`Logic`]-table implementation instead of the plane
/// arithmetic. Tests use this to demand byte-identical waveforms from
/// the two paths; benches use it as the baseline for the packed
/// speedup.
pub mod reference {
    use super::{Logic, Value};
    use std::cell::Cell;

    thread_local! {
        static FORCED: Cell<bool> = const { Cell::new(false) };
    }

    /// True while the calling thread is inside a [`force`] guard.
    #[inline]
    pub fn active() -> bool {
        FORCED.with(|f| f.get())
    }

    /// RAII guard returned by [`force`]; restores the previous mode on
    /// drop.
    pub struct Guard {
        prev: bool,
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            FORCED.with(|f| f.set(self.prev));
        }
    }

    /// Forces the per-bit reference implementation for all [`Value`]
    /// truth-table ops on the current thread until the guard drops.
    pub fn force() -> Guard {
        let prev = FORCED.with(|f| f.replace(true));
        Guard { prev }
    }

    /// Per-bit zip over zero-extended operands — the original
    /// `Vec<Logic>` implementation.
    pub(super) fn zip(a: &Value, b: &Value, f: fn(Logic, Logic) -> Logic) -> Value {
        let w = a.width().max(b.width());
        let av = a.resized(w);
        let bv = b.resized(w);
        let bits: Vec<Logic> = (0..w).map(|i| f(av.get(i), bv.get(i))).collect();
        Value::from_bits(&bits)
    }

    /// Per-bit case equality — the original scan.
    pub(super) fn logic_eq(a: &Value, b: &Value) -> Logic {
        let w = a.width().max(b.width());
        let av = a.resized(w);
        let bv = b.resized(w);
        let mut unknown = false;
        for i in 0..w {
            let (x, y) = (av.get(i), bv.get(i));
            if x.is_unknown() || y.is_unknown() {
                unknown = true;
            } else if x != y {
                return Logic::Zero;
            }
        }
        if unknown {
            Logic::X
        } else {
            Logic::One
        }
    }
}

/// One VHDL-style `std_logic` value (the nine-value alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Std9 {
    /// Uninitialized.
    U,
    /// Forcing unknown.
    X,
    /// Forcing zero.
    Zero,
    /// Forcing one.
    One,
    /// High impedance.
    Z,
    /// Weak unknown.
    W,
    /// Weak zero.
    L,
    /// Weak one.
    H,
    /// Don't care.
    DontCare,
}

impl Std9 {
    /// Character form (`U X 0 1 Z W L H -`).
    pub fn to_char(self) -> char {
        match self {
            Std9::U => 'U',
            Std9::X => 'X',
            Std9::Zero => '0',
            Std9::One => '1',
            Std9::Z => 'Z',
            Std9::W => 'W',
            Std9::L => 'L',
            Std9::H => 'H',
            Std9::DontCare => '-',
        }
    }

    /// Parses a character form.
    pub fn from_char(c: char) -> Option<Std9> {
        match c {
            'U' => Some(Std9::U),
            'X' => Some(Std9::X),
            '0' => Some(Std9::Zero),
            '1' => Some(Std9::One),
            'Z' => Some(Std9::Z),
            'W' => Some(Std9::W),
            'L' => Some(Std9::L),
            'H' => Some(Std9::H),
            '-' => Some(Std9::DontCare),
            _ => None,
        }
    }

    /// The *correct* translation into the four-value set: weak levels
    /// resolve to their strong levels, everything unknown-ish to X.
    pub fn to_logic_full(self) -> Logic {
        match self {
            Std9::Zero | Std9::L => Logic::Zero,
            Std9::One | Std9::H => Logic::One,
            Std9::Z => Logic::Z,
            Std9::U | Std9::X | Std9::W | Std9::DontCare => Logic::X,
        }
    }

    /// The *naive* translation that only understands the characters the
    /// Verilog set shares (`0 1 X Z`) and maps everything else to X —
    /// losing weak levels, the classic co-simulation defect.
    pub fn to_logic_naive(self) -> Logic {
        match self {
            Std9::Zero => Logic::Zero,
            Std9::One => Logic::One,
            Std9::Z => Logic::Z,
            _ => Logic::X,
        }
    }

    /// Encodes a four-value logic level into the nine-value set;
    /// `weak` drives the weak levels `L`/`H` instead of `0`/`1` (a
    /// pulled-up/down VHDL output).
    pub fn from_logic(l: Logic, weak: bool) -> Std9 {
        match (l, weak) {
            (Logic::Zero, false) => Std9::Zero,
            (Logic::One, false) => Std9::One,
            (Logic::Zero, true) => Std9::L,
            (Logic::One, true) => Std9::H,
            (Logic::Z, _) => Std9::Z,
            (Logic::X, _) => Std9::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_tables_match_verilog() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Z.and(One), X, "z behaves as x");
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(X), X);
    }

    #[test]
    fn plane_encoding_round_trips() {
        for l in Logic::ALL {
            let (v, u) = l.planes();
            assert_eq!(Logic::from_planes(v, u), l);
        }
    }

    #[test]
    fn value_numeric_round_trip() {
        let v = Value::from_u64(0b1010, 4);
        assert_eq!(v.to_string_msb(), "1010");
        assert_eq!(v.as_u64(), Some(10));
        assert_eq!(v.get(1), Logic::One);
        assert_eq!(v.get(9), Logic::X, "out of range reads x");
    }

    #[test]
    fn string_parsing_handles_unknowns() {
        let v = Value::from_str_msb("1x0z").unwrap();
        assert!(v.has_unknown());
        assert_eq!(v.as_u64(), None);
        assert_eq!(v.get(3), Logic::One);
        assert_eq!(v.get(0), Logic::Z);
        assert!(Value::from_str_msb("10q1").is_none());
        assert!(Value::from_str_msb("").is_none());
    }

    #[test]
    fn truthiness_is_three_valued() {
        assert_eq!(Value::from_u64(4, 3).truthy(), Some(true));
        assert_eq!(Value::from_u64(0, 3).truthy(), Some(false));
        assert_eq!(Value::from_str_msb("0x0").unwrap().truthy(), None);
        assert_eq!(Value::from_str_msb("1x0").unwrap().truthy(), Some(true));
        // A lone z is unknown, not true.
        assert_eq!(Value::bit(Logic::Z).truthy(), None);
    }

    #[test]
    fn logic_eq_three_valued() {
        let a = Value::from_u64(5, 3);
        assert_eq!(a.logic_eq(&Value::from_u64(5, 3)), Logic::One);
        assert_eq!(a.logic_eq(&Value::from_u64(4, 3)), Logic::Zero);
        assert_eq!(a.logic_eq(&Value::from_str_msb("1x1").unwrap()), Logic::X);
        // A known mismatch beats an unknown elsewhere.
        assert_eq!(
            Value::from_str_msb("0x1")
                .unwrap()
                .logic_eq(&Value::from_str_msb("1x1").unwrap()),
            Logic::Zero
        );
    }

    #[test]
    fn widths_extend_with_zero() {
        let a = Value::from_u64(1, 1);
        let b = Value::from_u64(0b10, 2);
        assert_eq!(a.or(&b).as_u64(), Some(0b11));
        assert_eq!(a.and(&b).as_u64(), Some(0));
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::from_u64(0b111, 3).reduce_and(), Logic::One);
        assert_eq!(Value::from_u64(0b110, 3).reduce_and(), Logic::Zero);
        assert_eq!(Value::from_u64(0, 3).reduce_or(), Logic::Zero);
        assert_eq!(Value::from_str_msb("x1").unwrap().reduce_or(), Logic::One);
    }

    #[test]
    fn merge_keeps_agreement() {
        let a = Value::from_u64(0b1100, 4);
        let b = Value::from_u64(0b1010, 4);
        assert_eq!(a.merge(&b).to_string_msb(), "1xx0");
        // z only merges with z.
        let z = Value::from_str_msb("z1").unwrap();
        let x = Value::from_str_msb("x1").unwrap();
        assert_eq!(z.merge(&z).to_string_msb(), "z1");
        assert_eq!(z.merge(&x).to_string_msb(), "x1");
    }

    #[test]
    fn wide_values_cross_the_word_boundary() {
        // 65-bit value with the top bit set: exercises the Wide repr.
        let s = format!("1{}", "0".repeat(64));
        let v = Value::from_str_msb(&s).unwrap();
        assert_eq!(v.width(), 65);
        assert_eq!(v.get(64), Logic::One);
        assert_eq!(v.get(63), Logic::Zero);
        assert_eq!(v.as_u64(), None, "wider than 64 bits");
        assert_eq!(v.truthy(), Some(true));
        assert_eq!(v.not().get(64), Logic::Zero);
        assert_eq!(v.not().get(0), Logic::One);
        // Resize down to 64 collapses to the inline repr and drops the
        // top bit.
        let narrow = v.resized(64);
        assert_eq!(narrow.as_u64(), Some(0));
        assert_eq!(narrow, Value::from_u64(0, 64));
    }

    #[test]
    fn equality_is_semantic_across_resize_paths() {
        // Same 64-bit value reached inline vs truncated from wide.
        let wide = Value::from_str_msb(&format!("x{}", "1".repeat(64)))
            .unwrap()
            .resized(64);
        let small = Value::from_u64(u64::MAX, 64);
        assert_eq!(wide, small);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&wide), h(&small));
    }

    #[test]
    fn concat_packs_msb_first() {
        let a = Value::from_u64(0b1, 1);
        let b = Value::from_u64(0b0010, 4);
        let c = Value::concat_msb(&[&a, &b]);
        assert_eq!(c.to_string_msb(), "10010");
        // Crossing the word boundary: 1'b1 on top of 64 zeros.
        let wide = Value::concat_msb(&[&a, &Value::from_u64(0, 64)]);
        assert_eq!(wide.width(), 65);
        assert_eq!(wide.get(64), Logic::One);
        // Unknowns travel through concatenation.
        let withx = Value::concat_msb(&[&Value::bit(Logic::X), &a]);
        assert_eq!(withx.to_string_msb(), "x1");
    }

    #[test]
    fn reference_mode_matches_packed_ops() {
        let a = Value::from_str_msb("10xz01").unwrap();
        let b = Value::from_str_msb("zx1010").unwrap();
        let packed = (
            a.and(&b),
            a.or(&b),
            a.xor(&b),
            a.not(),
            a.merge(&b),
            a.logic_eq(&b),
            a.reduce_and(),
            a.reduce_or(),
        );
        let guard = reference::force();
        let per_bit = (
            a.and(&b),
            a.or(&b),
            a.xor(&b),
            a.not(),
            a.merge(&b),
            a.logic_eq(&b),
            a.reduce_and(),
            a.reduce_or(),
        );
        drop(guard);
        assert_eq!(packed, per_bit);
        assert!(!reference::active(), "guard restored the packed path");
    }

    #[test]
    fn std9_translations_differ_exactly_on_weak_levels() {
        for s in [
            Std9::U,
            Std9::X,
            Std9::Zero,
            Std9::One,
            Std9::Z,
            Std9::W,
            Std9::L,
            Std9::H,
            Std9::DontCare,
        ] {
            let full = s.to_logic_full();
            let naive = s.to_logic_naive();
            match s {
                Std9::L | Std9::H => {
                    assert_ne!(full, naive, "{s:?} must be lost by the naive table");
                    assert_eq!(naive, Logic::X);
                }
                _ => assert_eq!(full, naive),
            }
        }
    }

    #[test]
    fn std9_char_round_trip() {
        for c in ['U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'] {
            assert_eq!(Std9::from_char(c).unwrap().to_char(), c);
        }
        assert!(Std9::from_char('q').is_none());
    }
}
