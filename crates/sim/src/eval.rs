//! Expression evaluation and statement execution over circuit state.

use hdl::ast::{BinOp, UnOp};

use crate::elab::{LRef, SExpr, SStmt, SigId, SignalDef};
use crate::logic::{Logic, Value};

/// Evaluates an expression against the current state.
pub fn eval(e: &SExpr, state: &[Value], defs: &[SignalDef]) -> Value {
    match e {
        SExpr::Sig(s) => state[*s].clone(),
        SExpr::Bit(s, idx) => {
            let iv = eval(idx, state, defs);
            match iv.as_u64() {
                Some(i) => {
                    let rel = i as i64 - defs[*s].lsb;
                    if rel < 0 {
                        Value::bit(Logic::X)
                    } else {
                        Value::bit(state[*s].get(rel as usize))
                    }
                }
                None => Value::bit(Logic::X),
            }
        }
        SExpr::Const(v) => v.clone(),
        SExpr::Unary(op, x) => {
            let v = eval(x, state, defs);
            match op {
                UnOp::Not => v.not(),
                UnOp::LNot => match v.truthy() {
                    Some(b) => Value::bit(if b { Logic::Zero } else { Logic::One }),
                    None => Value::bit(Logic::X),
                },
                UnOp::Neg => match v.as_u64() {
                    Some(n) => Value::from_u64(n.wrapping_neg(), v.width()),
                    None => Value::unknown(v.width()),
                },
                UnOp::RedAnd => Value::bit(v.reduce_and()),
                UnOp::RedOr => Value::bit(v.reduce_or()),
            }
        }
        SExpr::Binary(op, a, b) => {
            let va = eval(a, state, defs);
            let vb = eval(b, state, defs);
            binary(*op, &va, &vb)
        }
        SExpr::Ternary(c, a, b) => {
            let vc = eval(c, state, defs);
            match vc.truthy() {
                Some(true) => eval(a, state, defs),
                Some(false) => eval(b, state, defs),
                None => eval(a, state, defs).merge(&eval(b, state, defs)),
            }
        }
        SExpr::Concat(items) => {
            // MSB-first operand order: the first item occupies the top
            // bits. Word-level blit, no per-bit round trip.
            let parts: Vec<Value> = items.iter().map(|i| eval(i, state, defs)).collect();
            let refs: Vec<&Value> = parts.iter().collect();
            Value::concat_msb(&refs)
        }
    }
}

fn binary(op: BinOp, a: &Value, b: &Value) -> Value {
    let w = a.width().max(b.width());
    match op {
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::LAnd => match (a.truthy(), b.truthy()) {
            (Some(false), _) | (_, Some(false)) => Value::bit(Logic::Zero),
            (Some(true), Some(true)) => Value::bit(Logic::One),
            _ => Value::bit(Logic::X),
        },
        BinOp::LOr => match (a.truthy(), b.truthy()) {
            (Some(true), _) | (_, Some(true)) => Value::bit(Logic::One),
            (Some(false), Some(false)) => Value::bit(Logic::Zero),
            _ => Value::bit(Logic::X),
        },
        BinOp::Eq => Value::bit(a.logic_eq(b)),
        BinOp::Ne => Value::bit(a.logic_eq(b).not()),
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => match (a.as_u64(), b.as_u64()) {
            (Some(x), Some(y)) => {
                let r = match op {
                    BinOp::Lt => x < y,
                    BinOp::Gt => x > y,
                    BinOp::Le => x <= y,
                    _ => x >= y,
                };
                Value::bit(if r { Logic::One } else { Logic::Zero })
            }
            _ => Value::bit(Logic::X),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            match (a.as_u64(), b.as_u64()) {
                (Some(x), Some(y)) => {
                    let r = match op {
                        BinOp::Add => Some(x.wrapping_add(y)),
                        BinOp::Sub => Some(x.wrapping_sub(y)),
                        BinOp::Mul => Some(x.wrapping_mul(y)),
                        BinOp::Div => x.checked_div(y),
                        _ => x.checked_rem(y),
                    };
                    match r {
                        Some(v) => Value::from_u64(v, w),
                        None => Value::unknown(w),
                    }
                }
                _ => Value::unknown(w),
            }
        }
        BinOp::Shl | BinOp::Shr => match (a.as_u64(), b.as_u64()) {
            (Some(x), Some(y)) if y < 64 => {
                let v = if op == BinOp::Shl { x << y } else { x >> y };
                Value::from_u64(v, w)
            }
            (Some(_), Some(_)) => Value::from_u64(0, w),
            _ => Value::unknown(w),
        },
    }
}

/// One recorded state change: `(signal, old, new)`.
pub type Change = (SigId, Value, Value);

/// A resolved non-blocking update.
#[derive(Debug, Clone, PartialEq)]
pub struct NbaUpdate {
    /// Target signal.
    pub sig: SigId,
    /// Resolved bit index (relative, after lsb adjustment), if any.
    pub bit: Option<i64>,
    /// Value to apply.
    pub value: Value,
}

/// Applies a value to a target, returning the change if the stored
/// value differs.
pub fn store(
    state: &mut [Value],
    defs: &[SignalDef],
    sig: SigId,
    bit: Option<i64>,
    value: &Value,
) -> Option<Change> {
    let old = state[sig].clone();
    let new = match bit {
        None => value.resized(defs[sig].width),
        Some(rel) => {
            if rel < 0 || rel as usize >= defs[sig].width {
                return None; // out-of-range bit write is a no-op
            }
            let mut new = old.clone();
            new.set_bit(rel as usize, value.get(0));
            new
        }
    };
    if new == old {
        return None;
    }
    state[sig] = new.clone();
    Some((sig, old, new))
}

/// Executes a statement atomically. Blocking assignments update `state`
/// immediately and append to `changes`; non-blocking assignments are
/// resolved and appended to `nba`.
pub fn exec(
    stmt: &SStmt,
    state: &mut Vec<Value>,
    defs: &[SignalDef],
    changes: &mut Vec<Change>,
    nba: &mut Vec<NbaUpdate>,
) {
    match stmt {
        SStmt::Block(items) => {
            for s in items {
                exec(s, state, defs, changes, nba);
            }
        }
        SStmt::If {
            cond,
            then_s,
            else_s,
        } => match eval(cond, state, defs).truthy() {
            Some(true) => exec(then_s, state, defs, changes, nba),
            _ => {
                if let Some(e) = else_s {
                    exec(e, state, defs, changes, nba);
                }
            }
        },
        SStmt::Assign { lhs, rhs, blocking } => {
            let value = eval(rhs, state, defs);
            let bit = resolve_bit(lhs, state, defs);
            if matches!(bit, Some(Err(()))) {
                return; // unknown index: discard the write
            }
            let bit = bit.map(|b| b.expect("checked"));
            if *blocking {
                if let Some(change) = store(state, defs, lhs.sig, bit, &value) {
                    changes.push(change);
                }
            } else {
                nba.push(NbaUpdate {
                    sig: lhs.sig,
                    bit,
                    value,
                });
            }
        }
        SStmt::Case {
            subject,
            arms,
            default,
        } => {
            let sv = eval(subject, state, defs);
            for (vals, body) in arms {
                for v in vals {
                    if sv.logic_eq(&eval(v, state, defs)) == Logic::One {
                        exec(body, state, defs, changes, nba);
                        return;
                    }
                }
            }
            if let Some(d) = default {
                exec(d, state, defs, changes, nba);
            }
        }
        SStmt::Nop => {}
    }
}

/// Resolves an lvalue's bit select now (Verilog semantics: the index is
/// evaluated at assignment time). `Some(Err(()))` means the index was
/// unknown.
#[allow(clippy::type_complexity)]
fn resolve_bit(lhs: &LRef, state: &[Value], defs: &[SignalDef]) -> Option<Result<i64, ()>> {
    let idx = lhs.index.as_ref()?;
    let v = eval(idx, state, defs);
    Some(match v.as_u64() {
        Some(i) => Ok(i as i64 - defs[lhs.sig].lsb),
        None => Err(()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs2() -> Vec<SignalDef> {
        vec![
            SignalDef {
                name: "a".into(),
                width: 1,
                lsb: 0,
                is_input: true,
            },
            SignalDef {
                name: "v".into(),
                width: 4,
                lsb: 0,
                is_input: false,
            },
        ]
    }

    #[test]
    fn eval_bit_select_and_ops() {
        let defs = defs2();
        let state = vec![Value::bit(Logic::One), Value::from_u64(0b1010, 4)];
        let e = SExpr::Bit(1, Box::new(SExpr::Const(Value::from_u64(3, 8))));
        assert_eq!(eval(&e, &state, &defs).get(0), Logic::One);
        let and = SExpr::Binary(
            BinOp::And,
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::bit(Logic::X))),
        );
        assert_eq!(eval(&and, &state, &defs).get(0), Logic::X);
    }

    #[test]
    fn arithmetic_and_compare() {
        let defs = defs2();
        let state = vec![Value::bit(Logic::Zero), Value::from_u64(7, 4)];
        let add = SExpr::Binary(
            BinOp::Add,
            Box::new(SExpr::Sig(1)),
            Box::new(SExpr::Const(Value::from_u64(2, 4))),
        );
        assert_eq!(eval(&add, &state, &defs).as_u64(), Some(9 & 0xf));
        let lt = SExpr::Binary(
            BinOp::Lt,
            Box::new(SExpr::Sig(1)),
            Box::new(SExpr::Const(Value::from_u64(9, 4))),
        );
        assert_eq!(eval(&lt, &state, &defs).get(0), Logic::One);
        let div0 = SExpr::Binary(
            BinOp::Div,
            Box::new(SExpr::Sig(1)),
            Box::new(SExpr::Const(Value::from_u64(0, 4))),
        );
        assert!(eval(&div0, &state, &defs).has_unknown());
    }

    #[test]
    fn ternary_merges_on_unknown_condition() {
        let defs = defs2();
        let state = vec![Value::bit(Logic::X), Value::from_u64(0, 4)];
        let t = SExpr::Ternary(
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::from_u64(0b1100, 4))),
            Box::new(SExpr::Const(Value::from_u64(0b1010, 4))),
        );
        assert_eq!(eval(&t, &state, &defs).to_string_msb(), "1xx0");
    }

    #[test]
    fn concat_is_msb_first() {
        let defs = defs2();
        let state = vec![Value::bit(Logic::One), Value::from_u64(0b10, 4)];
        let c = SExpr::Concat(vec![SExpr::Sig(0), SExpr::Sig(1)]);
        // {1'b1, 4'b0010} = 5'b10010
        assert_eq!(eval(&c, &state, &defs).to_string_msb(), "10010");
    }

    #[test]
    fn store_whole_and_bit() {
        let defs = defs2();
        let mut state = vec![Value::bit(Logic::Zero), Value::from_u64(0, 4)];
        let ch = store(&mut state, &defs, 1, None, &Value::from_u64(0b101, 4)).unwrap();
        assert_eq!(ch.2.as_u64(), Some(5));
        // Bit write.
        let ch2 = store(&mut state, &defs, 1, Some(1), &Value::bit(Logic::One)).unwrap();
        assert_eq!(ch2.2.as_u64(), Some(7));
        // Same value: no change.
        assert!(store(&mut state, &defs, 1, Some(1), &Value::bit(Logic::One)).is_none());
        // Out of range: no-op.
        assert!(store(&mut state, &defs, 1, Some(9), &Value::bit(Logic::One)).is_none());
    }

    #[test]
    fn exec_blocking_vs_nonblocking() {
        let defs = defs2();
        let mut state = vec![Value::bit(Logic::Zero), Value::from_u64(0, 4)];
        let mut changes = Vec::new();
        let mut nba = Vec::new();
        let stmt = SStmt::Block(vec![
            SStmt::Assign {
                lhs: LRef {
                    sig: 0,
                    index: None,
                },
                rhs: SExpr::Const(Value::bit(Logic::One)),
                blocking: true,
            },
            SStmt::Assign {
                lhs: LRef {
                    sig: 1,
                    index: None,
                },
                rhs: SExpr::Const(Value::from_u64(9, 4)),
                blocking: false,
            },
        ]);
        exec(&stmt, &mut state, &defs, &mut changes, &mut nba);
        assert_eq!(changes.len(), 1);
        assert_eq!(state[0].get(0), Logic::One);
        assert_eq!(state[1].as_u64(), Some(0), "nba not applied yet");
        assert_eq!(nba.len(), 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn defs1(width: usize) -> Vec<SignalDef> {
        vec![SignalDef {
            name: "v".into(),
            width,
            lsb: 0,
            is_input: false,
        }]
    }

    #[test]
    fn shifts_and_logic_short_circuit() {
        let defs = defs1(8);
        let state = vec![Value::from_u64(0b0000_0110, 8)];
        let shl = SExpr::Binary(
            BinOp::Shl,
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::from_u64(2, 4))),
        );
        assert_eq!(eval(&shl, &state, &defs).as_u64(), Some(0b0001_1000));
        let shr = SExpr::Binary(
            BinOp::Shr,
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::from_u64(1, 4))),
        );
        assert_eq!(eval(&shr, &state, &defs).as_u64(), Some(0b0000_0011));
        // Logical AND short-circuits on a known false even with an
        // unknown on the other side.
        let land = SExpr::Binary(
            BinOp::LAnd,
            Box::new(SExpr::Const(Value::from_u64(0, 1))),
            Box::new(SExpr::Const(Value::bit(Logic::X))),
        );
        assert_eq!(eval(&land, &state, &defs).get(0), Logic::Zero);
        let lor = SExpr::Binary(
            BinOp::LOr,
            Box::new(SExpr::Const(Value::bit(Logic::X))),
            Box::new(SExpr::Const(Value::from_u64(1, 1))),
        );
        assert_eq!(eval(&lor, &state, &defs).get(0), Logic::One);
        // Both unknown: X.
        let both_x = SExpr::Binary(
            BinOp::LOr,
            Box::new(SExpr::Const(Value::bit(Logic::X))),
            Box::new(SExpr::Const(Value::bit(Logic::Z))),
        );
        assert_eq!(eval(&both_x, &state, &defs).get(0), Logic::X);
    }

    #[test]
    fn unknown_shift_amount_and_huge_shift() {
        let defs = defs1(8);
        let state = vec![Value::from_u64(0xff, 8)];
        let sx = SExpr::Binary(
            BinOp::Shl,
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::bit(Logic::X))),
        );
        assert!(eval(&sx, &state, &defs).has_unknown());
        let far = SExpr::Binary(
            BinOp::Shr,
            Box::new(SExpr::Sig(0)),
            Box::new(SExpr::Const(Value::from_u64(70, 8))),
        );
        assert_eq!(eval(&far, &state, &defs).as_u64(), Some(0));
    }

    #[test]
    fn reduction_and_logical_not() {
        let defs = defs1(4);
        let state = vec![Value::from_u64(0b1111, 4)];
        let red = SExpr::Unary(UnOp::RedAnd, Box::new(SExpr::Sig(0)));
        assert_eq!(eval(&red, &state, &defs).get(0), Logic::One);
        let lnot = SExpr::Unary(UnOp::LNot, Box::new(SExpr::Sig(0)));
        assert_eq!(eval(&lnot, &state, &defs).get(0), Logic::Zero);
        let neg = SExpr::Unary(UnOp::Neg, Box::new(SExpr::Sig(0)));
        // -15 mod 2^4 = 1.
        assert_eq!(eval(&neg, &state, &defs).as_u64(), Some(1));
    }

    #[test]
    fn out_of_range_and_unknown_bit_selects() {
        let defs = defs1(4);
        let state = vec![Value::from_u64(0b1010, 4)];
        let far = SExpr::Bit(0, Box::new(SExpr::Const(Value::from_u64(9, 8))));
        assert_eq!(eval(&far, &state, &defs).get(0), Logic::X);
        let unknown = SExpr::Bit(0, Box::new(SExpr::Const(Value::bit(Logic::X))));
        assert_eq!(eval(&unknown, &state, &defs).get(0), Logic::X);
    }
}
