//! # sim — event-driven HDL simulation with legal nondeterminism
//!
//! The simulator substrate for the CAD-interoperability workbench
//! reproducing *Issues and Answers in CAD Tool Interoperability*
//! (DAC 1996). It implements every Section 3.1 phenomenon the paper
//! catalogues:
//!
//! * an event-driven four-value kernel whose **scheduling policy** is a
//!   parameter — simultaneous-event order and continuous-assignment
//!   eagerness are both legal freedoms ([`kernel`], [`logic`]),
//! * **race detection** by running one model under several policies and
//!   diffing waveforms ([`race`]),
//! * **backward-compatibility drift** in timing checks, with a
//!   `+pre_16a_path`-style switch ([`timing`]),
//! * **co-simulation** across a nine-value/four-value bridge with full
//!   or naive value translation ([`cosim`]).
//!
//! Models come from the [`hdl`] crate ([`elab`] compiles a flattened
//! module).
//!
//! Values are packed two-bitplane words ([`logic::Value`]): widths up
//! to 64 are two inline `u64`s and the gate tables are word-parallel
//! plane arithmetic, with a retained per-bit reference path
//! ([`logic::reference`]) for differential testing. Kernels are `Send`
//! (the circuit sits behind an `Arc`), so the policy × stimulus
//! divergence grid can be swept across threads with
//! [`race::sweep_parallel`].
//!
//! ## Example
//!
//! ```
//! use sim::elab::compile_unit;
//! use sim::kernel::SchedulerPolicy;
//! use sim::race::{clocked_testbench, detect, models};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = hdl::parse(models::PAPER_RACE)?;
//! let circuit = compile_unit(&unit, "race")?;
//! let report = detect(&circuit, &SchedulerPolicy::all(), |k| {
//!     clocked_testbench(k, 4)
//! })?;
//! assert!(report.has_race());
//! # Ok(())
//! # }
//! ```

pub mod cosim;
pub mod elab;
pub mod eval;
pub mod kernel;
pub mod logic;
pub mod pli;
pub mod race;
pub mod timing;
pub mod vcd;

pub use elab::{compile, compile_unit, Circuit};
pub use kernel::{IndexedWaveform, Kernel, SchedulerPolicy, SimError, Waveform};
pub use logic::{Logic, Std9, Value};
pub use race::{sweep, sweep_parallel, RaceReport, Stim, SweepResult};
