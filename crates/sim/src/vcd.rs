//! VCD waveform interchange.
//!
//! Waveforms are themselves interchange artifacts between tools (the
//! paper's CovMeter-style analyzers consume simulator dumps). This
//! module writes and reads the classic Value Change Dump text format so
//! two kernels — or a kernel and an external viewer — can exchange
//! results.

use std::collections::BTreeMap;
use std::fmt;

use crate::elab::{Circuit, SigId};
use crate::kernel::Waveform;
use crate::logic::Value;

/// A parsed VCD: declared signals and time-ordered changes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VcdData {
    /// `(name, width)` per declared signal.
    pub signals: Vec<(String, usize)>,
    /// `(time, signal index, value)` in file order.
    pub changes: Vec<(u64, usize, Value)>,
}

impl VcdData {
    /// The collapsed history of one signal by name. Scans the whole
    /// change list; callers querying many signals should build
    /// [`VcdData::indexed`] once instead.
    pub fn history(&self, name: &str) -> Vec<(u64, Value)> {
        self.indexed_for(self.signals.iter().position(|(n, _)| n == name))
    }

    /// Builds a per-signal change index in one pass, for repeated
    /// history queries (the [`diff`] comparator walks every signal).
    pub fn indexed(&self) -> IndexedVcd<'_> {
        let mut by_sig: Vec<Vec<u32>> = vec![Vec::new(); self.signals.len()];
        for (i, (_, s, _)) in self.changes.iter().enumerate() {
            if let Some(list) = by_sig.get_mut(*s) {
                list.push(i as u32);
            }
        }
        IndexedVcd { data: self, by_sig }
    }

    fn indexed_for(&self, idx: Option<usize>) -> Vec<(u64, Value)> {
        let Some(idx) = idx else {
            return Vec::new();
        };
        let mut out: Vec<(u64, Value)> = Vec::new();
        for (t, s, v) in &self.changes {
            if *s == idx && out.last().map(|(_, lv)| lv) != Some(v) {
                out.push((*t, v.clone()));
            }
        }
        out
    }
}

/// A per-signal index over parsed VCD changes, mirroring
/// [`crate::kernel::IndexedWaveform`]: built once, each history query
/// then costs O(own changes).
#[derive(Debug)]
pub struct IndexedVcd<'a> {
    data: &'a VcdData,
    by_sig: Vec<Vec<u32>>,
}

impl IndexedVcd<'_> {
    /// The collapsed history of one signal by name — identical output
    /// to [`VcdData::history`].
    pub fn history(&self, name: &str) -> Vec<(u64, Value)> {
        let Some(idx) = self.data.signals.iter().position(|(n, _)| n == name) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, Value)> = Vec::new();
        for &i in &self.by_sig[idx] {
            let (t, _, v) = &self.data.changes[i as usize];
            if out.last().map(|(_, lv)| lv) != Some(v) {
                out.push((*t, v.clone()));
            }
        }
        out
    }
}

/// Error parsing VCD text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVcdError {
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseVcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcd: {}", self.message)
    }
}

impl std::error::Error for ParseVcdError {}

fn id_code(mut n: usize) -> String {
    // Printable identifier codes, VCD style: ! " # ... (33..=126).
    let mut out = String::new();
    loop {
        out.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    out
}

/// Exports a recorded waveform as VCD text.
pub fn export(circuit: &Circuit, waveform: &Waveform) -> String {
    let mut o = String::new();
    o.push_str("$date reproduction run $end\n");
    o.push_str("$version cad-interop sim $end\n");
    o.push_str("$timescale 1ns $end\n");
    o.push_str("$scope module top $end\n");
    for (i, sig) in circuit.signals.iter().enumerate() {
        o.push_str(&format!(
            "$var wire {} {} {} $end\n",
            sig.width,
            id_code(i),
            sig.name
        ));
    }
    o.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut time: Option<u64> = None;
    for (t, sig, value) in &waveform.changes {
        if time != Some(*t) {
            o.push_str(&format!("#{t}\n"));
            time = Some(*t);
        }
        if value.width() == 1 {
            o.push_str(&format!("{}{}\n", value.get(0).to_char(), id_code(*sig)));
        } else {
            o.push_str(&format!("b{} {}\n", value.to_string_msb(), id_code(*sig)));
        }
    }
    o
}

/// Parses VCD text.
///
/// # Errors
///
/// Returns [`ParseVcdError`] on malformed declarations or change
/// records.
pub fn parse(text: &str) -> Result<VcdData, ParseVcdError> {
    let mut data = VcdData::default();
    let mut by_code: BTreeMap<String, usize> = BTreeMap::new();
    let mut time = 0u64;
    let err = |m: String| ParseVcdError { message: m };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("$var") {
            // $var wire <width> <code> <name> $end
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() < 6 {
                return Err(err(format!("bad $var: `{line}`")));
            }
            let width: usize = toks[2]
                .parse()
                .map_err(|_| err(format!("bad width in `{line}`")))?;
            by_code.insert(toks[3].to_string(), data.signals.len());
            data.signals.push((toks[4].to_string(), width));
            continue;
        }
        if line.starts_with('$') {
            continue; // other metadata
        }
        if let Some(t) = line.strip_prefix('#') {
            time = t
                .parse()
                .map_err(|_| err(format!("bad timestamp `{line}`")))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix('b') {
            let (bits, code) = rest
                .split_once(' ')
                .ok_or_else(|| err(format!("bad vector change `{line}`")))?;
            let idx = *by_code
                .get(code.trim())
                .ok_or_else(|| err(format!("unknown id `{code}`")))?;
            let value =
                Value::from_str_msb(bits).ok_or_else(|| err(format!("bad bits `{bits}`")))?;
            data.changes.push((time, idx, value));
            continue;
        }
        // Scalar change: <value><code>.
        let mut chars = line.chars();
        let v = chars.next().ok_or_else(|| err("empty change".into()))?;
        let code: String = chars.collect();
        let idx = *by_code
            .get(code.as_str())
            .ok_or_else(|| err(format!("unknown id `{code}`")))?;
        let logic = crate::logic::Logic::from_char(v)
            .ok_or_else(|| err(format!("bad scalar value `{v}`")))?;
        data.changes.push((time, idx, Value::bit(logic)));
    }
    Ok(data)
}

/// Compares two VCDs signal-by-signal (collapsed histories must match
/// for every name present in both). Returns the diverging names. Both
/// change lists are indexed once up front, so the comparison is linear
/// in total changes rather than signals × changes.
pub fn diff(a: &VcdData, b: &VcdData) -> Vec<String> {
    let (ia, ib) = (a.indexed(), b.indexed());
    let mut out = Vec::new();
    for (name, _) in &a.signals {
        if b.signals.iter().any(|(n, _)| n == name) && ia.history(name) != ib.history(name) {
            out.push(name.clone());
        }
    }
    out
}

/// Exports the kernel's waveform back through its own signal id space —
/// a convenience over [`export`].
pub fn from_kernel(kernel: &crate::kernel::Kernel) -> String {
    export(kernel.circuit(), kernel.waveform())
}

/// Hidden helper keeping `SigId` referenced in docs.
#[doc(hidden)]
pub type _SigIdAlias = SigId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use crate::kernel::{Kernel, SchedulerPolicy};
    use crate::logic::Logic;
    use hdl::parser::parse as hparse;

    fn run_counter() -> Kernel {
        let unit = hparse(
            "module m(input clk, output reg [3:0] q, output w);
               assign w = q[0];
               initial q = 0;
               always @(posedge clk) q <= q + 1;
             endmodule",
        )
        .expect("parses");
        let mut k = Kernel::new(
            compile_unit(&unit, "m").expect("elab"),
            SchedulerPolicy::sim_a(),
        );
        let mut t = 0u64;
        k.poke_name("clk", Value::bit(Logic::Zero)).expect("clk");
        k.run_until(t).expect("run");
        for _ in 0..5 {
            t += 1;
            k.poke_name("clk", Value::bit(Logic::One)).expect("clk");
            k.run_until(t).expect("run");
            t += 1;
            k.poke_name("clk", Value::bit(Logic::Zero)).expect("clk");
            k.run_until(t).expect("run");
        }
        k
    }

    #[test]
    fn export_parse_round_trips_histories() {
        let k = run_counter();
        let text = from_kernel(&k);
        let vcd = parse(&text).expect("parses");
        // Same signal set.
        assert_eq!(vcd.signals.len(), k.circuit().signal_count());
        // The counter's history survives the text round trip.
        let q = k.circuit().signal("q").expect("q");
        let native: Vec<(u64, Value)> = k.waveform().history(q);
        assert_eq!(vcd.history("q"), native);
        assert_eq!(
            vcd.history("q").last().map(|(_, v)| v.as_u64()),
            Some(Some(5))
        );
    }

    #[test]
    fn diff_detects_divergence_between_tools() {
        // Two kernels under *different* policies on a racy model give
        // VCDs whose diff names the racy signal — cross-tool waveform
        // comparison, as a verification engineer would do it.
        let unit = hparse(crate::race::models::ORDER_RACE).expect("parses");
        let circuit = compile_unit(&unit, "order").expect("elab");
        let run = |policy| {
            let mut k = Kernel::new(circuit.clone(), policy);
            crate::race::clocked_testbench(&mut k, 4).expect("run");
            parse(&from_kernel(&k)).expect("parses")
        };
        let a = run(SchedulerPolicy::sim_a());
        let d = run(SchedulerPolicy {
            name: "SimD",
            order: crate::kernel::OrderPolicy::Lifo,
            eager_continuous: false,
        });
        let diverging = diff(&a, &d);
        assert!(diverging.contains(&"y".to_string()), "{diverging:?}");
        // Same policy twice: no diff.
        let a2 = run(SchedulerPolicy::sim_a());
        assert!(diff(&a, &a2).is_empty());
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn malformed_vcd_is_rejected() {
        assert!(parse("$var wire x ! q $end").is_err());
        assert!(parse("#notatime").is_err());
        assert!(parse("1%").is_err(), "unknown id code");
        assert!(parse("b10x1 %").is_err(), "unknown vector id");
    }
}
