//! PLI-style user extensions.
//!
//! Section 3.4: "Verilog simulators provide a PLI (programming language
//! interface), which allows the user to link custom C language modules
//! to the simulator." Here the custom module is a Rust closure hooked
//! to signal changes — same shape, no linker involved.
//!
//! Callbacks are `Send` (shared through `Arc<Mutex<..>>`), which keeps
//! a [`Kernel`] with registered hooks movable across threads — a
//! requirement of [`crate::race::sweep_parallel`].

use std::sync::{Arc, Mutex};

use crate::elab::SigId;
use crate::kernel::{Kernel, SimError};
use crate::logic::Value;

/// A user callback: `(time, new value)`.
pub type PliCallback = Arc<Mutex<dyn FnMut(u64, &Value) + Send>>;

/// A monitor that records every change of one signal — the classic
/// `$monitor` system task built on the PLI hook.
#[derive(Clone, Default)]
pub struct Monitor {
    log: Arc<Mutex<Vec<(u64, Value)>>>,
}

impl Monitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// The hook to register with [`Kernel::on_change`].
    pub fn callback(&self) -> PliCallback {
        let log = Arc::clone(&self.log);
        Arc::new(Mutex::new(move |t: u64, v: &Value| {
            log.lock().expect("monitor log").push((t, v.clone()));
        }))
    }

    /// The recorded `(time, value)` pairs.
    pub fn log(&self) -> Vec<(u64, Value)> {
        self.log.lock().expect("monitor log").clone()
    }

    /// The recorded history with consecutive duplicates collapsed.
    pub fn history(&self) -> Vec<(u64, Value)> {
        let mut out: Vec<(u64, Value)> = Vec::new();
        for (t, v) in self.log.lock().expect("monitor log").iter() {
            if out.last().map(|(_, lv)| lv) != Some(v) {
                out.push((*t, v.clone()));
            }
        }
        out
    }
}

/// Registers a change callback on a named signal.
///
/// # Errors
///
/// Fails when the signal name is unknown.
pub fn on_change_name(
    kernel: &mut Kernel,
    name: &str,
    callback: PliCallback,
) -> Result<SigId, SimError> {
    let sig = kernel
        .circuit()
        .signal(name)
        .ok_or_else(|| SimError::NoSuchSignal {
            name: name.to_string(),
        })?;
    kernel.on_change(sig, callback);
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use crate::kernel::SchedulerPolicy;
    use crate::logic::Logic;

    #[test]
    fn monitor_matches_waveform_history() {
        let unit = hdl::parse(
            "module m(input a, output w);
               assign w = ~a;
             endmodule",
        )
        .expect("parses");
        let mut k = Kernel::new(
            compile_unit(&unit, "m").expect("elab"),
            SchedulerPolicy::sim_a(),
        );
        let mon = Monitor::new();
        on_change_name(&mut k, "w", mon.callback()).expect("register");

        for (t, v) in [(1u64, Logic::One), (2, Logic::Zero), (3, Logic::One)] {
            k.poke_name("a", Value::bit(v)).expect("poke");
            k.run_until(t).expect("run");
        }
        let w = k.circuit().signal("w").expect("w");
        assert_eq!(mon.history(), k.waveform().history(w));
        assert_eq!(mon.history().len(), 3, "x->0, 0->1, 1->0");
    }

    #[test]
    fn callbacks_fire_for_mid_process_blocking_updates() {
        // The PLI sees blocking assignments as they commit, not only at
        // activation end — just like a real simulator's VPI callbacks.
        let unit = hdl::parse(
            "module m(input clk, input d, output reg x, output reg y);
               initial begin x = 0; y = 0; end
               always @(posedge clk) begin
                 x = d;
                 y = x;
               end
             endmodule",
        )
        .expect("parses");
        let mut k = Kernel::new(
            compile_unit(&unit, "m").expect("elab"),
            SchedulerPolicy::sim_a(),
        );
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        for name in ["x", "y"] {
            let log = Arc::clone(&seen);
            let tag = name.to_string();
            on_change_name(
                &mut k,
                name,
                Arc::new(Mutex::new(move |_t: u64, v: &Value| {
                    log.lock()
                        .expect("log")
                        .push(format!("{tag}={}", v.to_string_msb()));
                })),
            )
            .expect("register");
        }
        k.poke_name("clk", Value::bit(Logic::Zero)).expect("clk");
        k.poke_name("d", Value::bit(Logic::One)).expect("d");
        k.run_until(1).expect("run");
        k.poke_name("clk", Value::bit(Logic::One)).expect("clk");
        k.run_until(2).expect("run");
        let log = seen.lock().expect("log");
        // Initial zeros, then x=1 strictly before y=1 within one activation.
        let x1 = log.iter().position(|e| e == "x=1").expect("x=1 seen");
        let y1 = log.iter().position(|e| e == "y=1").expect("y=1 seen");
        assert!(x1 < y1, "{log:?}");
    }

    #[test]
    fn unknown_signal_is_rejected() {
        let unit =
            hdl::parse("module m(input a, output w); assign w = a; endmodule").expect("parses");
        let mut k = Kernel::new(
            compile_unit(&unit, "m").expect("elab"),
            SchedulerPolicy::sim_a(),
        );
        let mon = Monitor::new();
        assert!(on_change_name(&mut k, "zz", mon.callback()).is_err());
    }
}
