//! The event-driven simulation kernel with pluggable scheduling.
//!
//! Section 3.1: "simulation results depend on the scheduling algorithm
//! the simulator uses to order and process events. Different Verilog
//! simulators can legitimately disagree on the outcome of the same
//! simulation, because the simulation cycle and processing order for
//! simultaneous events are not completely defined by the language."
//! [`SchedulerPolicy`] captures two of those legitimate freedoms: the
//! pop order of simultaneous activations and whether continuous
//! assignments propagate eagerly (mid-statement) or through the event
//! queue.
//!
//! ## Hot-path discipline
//!
//! A kernel run allocates nothing per event for circuits whose signals
//! are ≤ 64 bits wide: values are packed two-plane words
//! ([`crate::logic`]), activation dedup is a generation-stamped mark
//! array instead of a `BTreeSet`, watcher lists are walked in place
//! (never cloned), PLI dispatch borrows the callback list, and the NBA
//! buffer is recycled across delta cycles. The circuit itself lives
//! behind an [`Arc`], which also makes a [`Kernel`] `Send` — the basis
//! for [`crate::race::sweep_parallel`]'s multi-threaded divergence
//! sweeps.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use hdl::ast::Edge;
use obs::{NullRecorder, Recorder, Span};

use crate::elab::{Circuit, Proc, SStmt, SigId};
use crate::eval::{eval, store, Change, NbaUpdate};
use crate::logic::{Logic, Value};

/// Pop order for simultaneous process activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// First scheduled, first run.
    Fifo,
    /// Last scheduled, first run.
    Lifo,
}

/// A complete (and legal) scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerPolicy {
    /// Display name (the simulated vendor).
    pub name: &'static str,
    /// Simultaneous-activation order.
    pub order: OrderPolicy,
    /// When true, continuous assignments re-evaluate immediately upon
    /// operand change — even between two statements of a running
    /// process — instead of going through the event queue.
    pub eager_continuous: bool,
}

impl SchedulerPolicy {
    /// Vendor "SimA": FIFO order, queued continuous assigns (a
    /// compiled-code simulator).
    pub fn sim_a() -> Self {
        SchedulerPolicy {
            name: "SimA",
            order: OrderPolicy::Fifo,
            eager_continuous: false,
        }
    }

    /// Vendor "SimB": LIFO order, eager continuous assigns (an
    /// interpreted simulator).
    pub fn sim_b() -> Self {
        SchedulerPolicy {
            name: "SimB",
            order: OrderPolicy::Lifo,
            eager_continuous: true,
        }
    }

    /// All built-in policies.
    pub fn all() -> Vec<SchedulerPolicy> {
        vec![
            SchedulerPolicy::sim_a(),
            SchedulerPolicy::sim_b(),
            SchedulerPolicy {
                name: "SimC",
                order: OrderPolicy::Fifo,
                eager_continuous: true,
            },
            SchedulerPolicy {
                name: "SimD",
                order: OrderPolicy::Lifo,
                eager_continuous: false,
            },
        ]
    }
}

/// A recorded waveform: every change, in commit order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Waveform {
    /// `(time, signal, new value)` in commit order.
    pub changes: Vec<(u64, SigId, Value)>,
}

impl Waveform {
    /// The change history of one signal, with consecutive duplicates
    /// collapsed. This scans the whole change log; callers querying
    /// many signals should build a [`Waveform::indexed`] view once and
    /// read histories from it.
    pub fn history(&self, sig: SigId) -> Vec<(u64, Value)> {
        let mut out: Vec<(u64, Value)> = Vec::new();
        for (t, s, v) in &self.changes {
            if *s == sig && out.last().map(|(_, lv)| lv) != Some(v) {
                out.push((*t, v.clone()));
            }
        }
        out
    }

    /// Builds a per-signal change index in one pass over the log.
    /// `signal_count` bounds the signal id space (ids at or above it
    /// simply read back empty histories).
    pub fn indexed(&self, signal_count: usize) -> IndexedWaveform<'_> {
        let mut by_sig: Vec<Vec<u32>> = vec![Vec::new(); signal_count];
        for (i, (_, s, _)) in self.changes.iter().enumerate() {
            if let Some(list) = by_sig.get_mut(*s) {
                list.push(i as u32);
            }
        }
        IndexedWaveform { wave: self, by_sig }
    }
}

/// A per-signal index over a [`Waveform`], built once so that each
/// history query costs O(own changes) instead of O(all changes). Used
/// by the race and timing comparators, which query every signal.
#[derive(Debug)]
pub struct IndexedWaveform<'a> {
    wave: &'a Waveform,
    by_sig: Vec<Vec<u32>>,
}

impl IndexedWaveform<'_> {
    /// The change history of one signal, with consecutive duplicates
    /// collapsed — identical output to [`Waveform::history`].
    pub fn history(&self, sig: SigId) -> Vec<(u64, Value)> {
        let Some(positions) = self.by_sig.get(sig) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, Value)> = Vec::with_capacity(positions.len());
        for &i in positions {
            let (t, _, v) = &self.wave.changes[i as usize];
            if out.last().map(|(_, lv)| lv) != Some(v) {
                out.push((*t, v.clone()));
            }
        }
        out
    }

    /// Number of indexed signals.
    pub fn signal_count(&self) -> usize {
        self.by_sig.len()
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Zero-delay activity did not converge (combinational loop or
    /// oscillation).
    Runaway {
        /// Simulation time at which the loop was detected.
        time: u64,
    },
    /// Unknown signal name in a testbench call.
    NoSuchSignal {
        /// The name.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Runaway { time } => {
                write!(f, "zero-delay activity did not converge at t={time}")
            }
            SimError::NoSuchSignal { name } => write!(f, "no signal named `{name}`"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-slot step budget (activations) before declaring a runaway.
const SLOT_STEP_LIMIT: usize = 100_000;
/// Eager-propagation recursion cap.
const DEPTH_LIMIT: usize = 512;

/// An event-driven simulator instance.
///
/// Kernels are `Send`: the circuit is shared through an [`Arc`], PLI
/// callbacks are `Send` closures, and the recorder is the already
/// thread-safe [`obs::Recorder`]. A kernel can therefore be built on
/// one thread and run on another, which is what
/// [`crate::race::sweep_parallel`] does.
pub struct Kernel {
    circuit: Arc<Circuit>,
    policy: SchedulerPolicy,
    state: Vec<Value>,
    time: u64,
    queue: VecDeque<usize>,
    /// Generation-stamped queue-membership marks: `queued_mark[pid] ==
    /// queue_gen` means the process is currently in `queue`. The
    /// generation is always odd; popping rewinds the mark to the even
    /// `queue_gen - 1`, and draining a slot bumps the generation by
    /// two — staling every mark at once without touching the array.
    queued_mark: Vec<u64>,
    queue_gen: u64,
    nba: Vec<NbaUpdate>,
    /// Recycled NBA buffer: swapped with `nba` each delta cycle so the
    /// steady state performs no queue allocations.
    nba_scratch: Vec<NbaUpdate>,
    watchers: Vec<Vec<(Edge, usize)>>,
    next_stim: usize,
    waves: Waveform,
    steps: usize,
    depth: usize,
    pli: BTreeMap<SigId, Vec<crate::pli::PliCallback>>,
    recorder: Arc<dyn Recorder>,
    /// False while `recorder` is the [`NullRecorder`]: the hot `settle`
    /// loop skips even the virtual dispatch, keeping the untraced
    /// kernel's cost at zero.
    traced: bool,
}

/// Per-slot activity tallied during one [`Kernel::settle`].
#[derive(Default)]
struct SlotStats {
    delta_cycles: u64,
    nba_updates: u64,
}

impl Kernel {
    /// Builds a kernel over a circuit with the given policy. All
    /// signals start at X; continuous assignments are scheduled for
    /// time 0 (always blocks wait for their first trigger, as in
    /// Verilog).
    pub fn new(circuit: Circuit, policy: SchedulerPolicy) -> Self {
        Kernel::new_shared(Arc::new(circuit), policy)
    }

    /// Builds a kernel over an already-shared circuit. Policy sweeps
    /// run many kernels over one circuit; sharing the [`Arc`] avoids a
    /// deep clone per kernel.
    pub fn new_shared(circuit: Arc<Circuit>, policy: SchedulerPolicy) -> Self {
        let mut watchers: Vec<Vec<(Edge, usize)>> = vec![Vec::new(); circuit.signals.len()];
        for (pid, proc_) in circuit.procs.iter().enumerate() {
            match proc_ {
                Proc::Continuous { lhs, rhs } => {
                    let mut reads = Vec::new();
                    rhs.reads(&mut reads);
                    if let Some(i) = &lhs.index {
                        i.reads(&mut reads);
                    }
                    reads.sort_unstable();
                    reads.dedup();
                    for r in reads {
                        watchers[r].push((Edge::Any, pid));
                    }
                }
                Proc::Always { events, .. } => {
                    for (edge, sig) in events {
                        watchers[*sig].push((*edge, pid));
                    }
                }
            }
        }
        let state = circuit
            .signals
            .iter()
            .map(|s| Value::unknown(s.width))
            .collect();
        let proc_count = circuit.procs.len();
        let mut kernel = Kernel {
            policy,
            state,
            time: 0,
            queue: VecDeque::new(),
            queued_mark: vec![0; proc_count],
            queue_gen: 1,
            nba: Vec::new(),
            nba_scratch: Vec::new(),
            watchers,
            next_stim: 0,
            waves: Waveform::default(),
            steps: 0,
            depth: 0,
            pli: BTreeMap::new(),
            recorder: Arc::new(NullRecorder),
            traced: false,
            circuit,
        };
        for pid in 0..kernel.circuit.procs.len() {
            if matches!(kernel.circuit.procs[pid], Proc::Continuous { .. }) {
                kernel.enqueue(pid);
            }
        }
        kernel
    }

    /// The policy in use.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Routes kernel observability into `recorder`: `sim.settle` /
    /// `sim.run_until` spans, `sim.events` / `sim.delta_cycles` /
    /// `sim.nba_updates` / `sim.stimuli` counters, and a
    /// `sim.slot.activations` histogram (one sample per settled slot).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
        self.traced = true;
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The recorded waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.waves
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared circuit handle (cheap to clone).
    pub fn circuit_arc(&self) -> Arc<Circuit> {
        Arc::clone(&self.circuit)
    }

    /// Reads a signal's current value.
    pub fn peek(&self, sig: SigId) -> &Value {
        &self.state[sig]
    }

    /// Reads a signal by name.
    ///
    /// # Errors
    ///
    /// Fails when the name is unknown.
    pub fn peek_name(&self, name: &str) -> Result<&Value, SimError> {
        let sig = self.lookup(name)?;
        Ok(self.peek(sig))
    }

    /// Resolves a signal name to its id — do this once per signal in a
    /// testbench loop rather than paying the name-map lookup per event.
    ///
    /// # Errors
    ///
    /// Fails when the name is unknown.
    pub fn lookup(&self, name: &str) -> Result<SigId, SimError> {
        self.circuit
            .signal(name)
            .ok_or_else(|| SimError::NoSuchSignal {
                name: name.to_string(),
            })
    }

    /// Drives a signal from outside (a testbench poke). Propagation
    /// happens on the next [`Kernel::run_until`] / [`Kernel::settle`].
    pub fn poke(&mut self, sig: SigId, value: Value) {
        if let Some(change) = store(&mut self.state, &self.circuit.signals, sig, None, &value) {
            self.commit_deferred(change);
        }
    }

    /// Drives a signal by name.
    ///
    /// # Errors
    ///
    /// Fails when the name is unknown.
    pub fn poke_name(&mut self, name: &str, value: Value) -> Result<(), SimError> {
        let sig = self.lookup(name)?;
        self.poke(sig, value);
        Ok(())
    }

    /// Registers a PLI-style callback invoked on every committed change
    /// of `sig` (see [`crate::pli`]).
    pub fn on_change(&mut self, sig: SigId, callback: crate::pli::PliCallback) {
        self.pli.entry(sig).or_default().push(callback);
    }

    /// Fires registered callbacks for a committed change. Borrows the
    /// callback list in place — no per-commit clone of the vector.
    fn fire_pli(&self, sig: SigId, new: &Value) {
        if self.pli.is_empty() {
            return;
        }
        if let Some(cbs) = self.pli.get(&sig) {
            for cb in cbs {
                (cb.lock().expect("pli callback poisoned"))(self.time, new);
            }
        }
    }

    fn enqueue(&mut self, pid: usize) {
        if self.queued_mark[pid] != self.queue_gen {
            self.queued_mark[pid] = self.queue_gen;
            self.queue.push_back(pid);
        }
    }

    fn pop(&mut self) -> Option<usize> {
        let pid = match self.policy.order {
            OrderPolicy::Fifo => self.queue.pop_front(),
            OrderPolicy::Lifo => self.queue.pop_back(),
        }?;
        // Rewind to the (even) stale value; the generation itself stays
        // odd, so a stale mark can never collide with a future one.
        self.queued_mark[pid] = self.queue_gen - 1;
        Some(pid)
    }

    /// Commit used from outside process execution (pokes): watchers are
    /// queued, never run inline.
    fn commit_deferred(&mut self, change: Change) {
        let (sig, old, new) = change;
        self.fire_pli(sig, &new);
        self.waves.changes.push((self.time, sig, new.clone()));
        // Index loop: watcher lists are immutable after construction,
        // and re-borrowing per iteration lets `enqueue` take `&mut
        // self` without cloning the list.
        for i in 0..self.watchers[sig].len() {
            let (edge, pid) = self.watchers[sig][i];
            if edge_fires(edge, &old, &new) {
                self.enqueue(pid);
            }
        }
    }

    /// Commit used during process execution: under an eager policy,
    /// triggered continuous assignments run immediately (recursively);
    /// everything else is queued.
    fn commit_now(&mut self, change: Change) -> Result<(), SimError> {
        let (sig, old, new) = change;
        self.fire_pli(sig, &new);
        self.waves.changes.push((self.time, sig, new.clone()));
        for i in 0..self.watchers[sig].len() {
            let (edge, pid) = self.watchers[sig][i];
            if !edge_fires(edge, &old, &new) {
                continue;
            }
            if self.policy.eager_continuous
                && matches!(self.circuit.procs[pid], Proc::Continuous { .. })
            {
                self.run_proc(pid)?;
            } else {
                self.enqueue(pid);
            }
        }
        Ok(())
    }

    fn run_proc(&mut self, pid: usize) -> Result<(), SimError> {
        self.steps += 1;
        if self.steps > SLOT_STEP_LIMIT {
            return Err(SimError::Runaway { time: self.time });
        }
        self.depth += 1;
        if self.depth > DEPTH_LIMIT {
            self.depth -= 1;
            return Err(SimError::Runaway { time: self.time });
        }
        let circuit = Arc::clone(&self.circuit);
        let result = match &circuit.procs[pid] {
            Proc::Continuous { lhs, rhs } => {
                let value = eval(rhs, &self.state, &circuit.signals);
                let bit = match &lhs.index {
                    Some(i) => match eval(i, &self.state, &circuit.signals).as_u64() {
                        Some(v) => Some(v as i64 - circuit.signals[lhs.sig].lsb),
                        None => {
                            self.depth -= 1;
                            return Ok(()); // unknown index: no drive
                        }
                    },
                    None => None,
                };
                match store(&mut self.state, &circuit.signals, lhs.sig, bit, &value) {
                    Some(change) => self.commit_now(change),
                    None => Ok(()),
                }
            }
            Proc::Always { body, .. } => self.exec_stmt(body, &circuit),
        };
        self.depth -= 1;
        result
    }

    /// Statement execution with *live* commits: each blocking store
    /// publishes immediately, so eager continuous assignments can fire
    /// between two statements of the same process — the freedom behind
    /// the paper's `assign a = b & c` example.
    fn exec_stmt(&mut self, stmt: &SStmt, circuit: &Circuit) -> Result<(), SimError> {
        match stmt {
            SStmt::Block(items) => {
                for s in items {
                    self.exec_stmt(s, circuit)?;
                }
                Ok(())
            }
            SStmt::If {
                cond,
                then_s,
                else_s,
            } => match eval(cond, &self.state, &circuit.signals).truthy() {
                Some(true) => self.exec_stmt(then_s, circuit),
                _ => match else_s {
                    Some(e) => self.exec_stmt(e, circuit),
                    None => Ok(()),
                },
            },
            SStmt::Assign { lhs, rhs, blocking } => {
                let value = eval(rhs, &self.state, &circuit.signals);
                let bit = match &lhs.index {
                    Some(i) => match eval(i, &self.state, &circuit.signals).as_u64() {
                        Some(v) => Some(v as i64 - circuit.signals[lhs.sig].lsb),
                        None => return Ok(()), // unknown index: discard
                    },
                    None => None,
                };
                if *blocking {
                    if let Some(change) =
                        store(&mut self.state, &circuit.signals, lhs.sig, bit, &value)
                    {
                        self.commit_now(change)?;
                    }
                } else {
                    self.nba.push(NbaUpdate {
                        sig: lhs.sig,
                        bit,
                        value,
                    });
                }
                Ok(())
            }
            SStmt::Case {
                subject,
                arms,
                default,
            } => {
                let sv = eval(subject, &self.state, &circuit.signals);
                for (vals, body) in arms {
                    for v in vals {
                        if sv.logic_eq(&eval(v, &self.state, &circuit.signals)) == Logic::One {
                            return self.exec_stmt(body, circuit);
                        }
                    }
                }
                match default {
                    Some(d) => self.exec_stmt(d, circuit),
                    None => Ok(()),
                }
            }
            SStmt::Nop => Ok(()),
        }
    }

    /// Processes the current time slot until no activity remains.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runaway`] when zero-delay activity exceeds
    /// the step budget (combinational loop / oscillation).
    pub fn settle(&mut self) -> Result<(), SimError> {
        let mut stats = SlotStats::default();
        if !self.traced {
            return self.settle_inner(&mut stats);
        }
        let rec = Arc::clone(&self.recorder);
        let span = Span::enter(rec.as_ref(), "sim.settle");
        span.attr("time", self.time);
        let result = self.settle_inner(&mut stats);
        let activations = self.steps as u64;
        rec.add_counter("sim.events", activations);
        rec.add_counter("sim.delta_cycles", stats.delta_cycles);
        rec.add_counter("sim.nba_updates", stats.nba_updates);
        rec.record_value("sim.slot.activations", activations);
        span.attr("activations", activations);
        span.attr("delta_cycles", stats.delta_cycles);
        if result.is_err() {
            span.attr("runaway", true);
        }
        result
    }

    fn settle_inner(&mut self, stats: &mut SlotStats) -> Result<(), SimError> {
        self.steps = 0;
        loop {
            while let Some(pid) = self.pop() {
                self.run_proc(pid)?;
            }
            if self.nba.is_empty() {
                // Slot drained: advance the generation (stays odd) so
                // every mark goes stale without clearing the array.
                self.queue_gen += 2;
                return Ok(());
            }
            // NBA region: apply all pending updates, then loop back to
            // the active region. Swap through the scratch buffer so the
            // steady state reuses one allocation.
            stats.delta_cycles += 1;
            let mut updates = std::mem::take(&mut self.nba);
            std::mem::swap(&mut self.nba, &mut self.nba_scratch);
            self.nba.clear();
            stats.nba_updates += updates.len() as u64;
            for u in updates.drain(..) {
                if let Some(change) = store(
                    &mut self.state,
                    &self.circuit.signals,
                    u.sig,
                    u.bit,
                    &u.value,
                ) {
                    // NBA commits queue watchers like any other event.
                    self.commit_now(change)?;
                }
            }
            self.nba_scratch = updates;
        }
    }

    /// Advances simulation to `t_end`, applying initial-block stimuli
    /// on the way and settling each touched time slot.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Runaway`].
    pub fn run_until(&mut self, t_end: u64) -> Result<(), SimError> {
        if !self.traced {
            return self.run_until_inner(t_end);
        }
        let rec = Arc::clone(&self.recorder);
        let span = Span::enter(rec.as_ref(), "sim.run_until");
        span.attr("policy", self.policy.name);
        span.attr("t_start", self.time);
        span.attr("t_end", t_end);
        self.run_until_inner(t_end)
    }

    fn run_until_inner(&mut self, t_end: u64) -> Result<(), SimError> {
        self.settle()?;
        while self.next_stim < self.circuit.stimuli.len()
            && self.circuit.stimuli[self.next_stim].at <= t_end
        {
            let at = self.circuit.stimuli[self.next_stim].at;
            self.time = self.time.max(at);
            let circuit = Arc::clone(&self.circuit);
            while self.next_stim < circuit.stimuli.len() && circuit.stimuli[self.next_stim].at == at
            {
                let idx = self.next_stim;
                self.next_stim += 1;
                self.steps = 0;
                if self.traced {
                    self.recorder.add_counter("sim.stimuli", 1);
                }
                self.exec_stmt(&circuit.stimuli[idx].body, &circuit)?;
            }
            self.settle()?;
        }
        self.time = self.time.max(t_end);
        Ok(())
    }
}

fn edge_fires(edge: Edge, old: &Value, new: &Value) -> bool {
    let (o, n) = (old.get(0), new.get(0));
    match edge {
        Edge::Any => true,
        Edge::Pos => n == Logic::One && o != Logic::One,
        Edge::Neg => n == Logic::Zero && o != Logic::Zero,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use hdl::parser::parse;

    fn kernel(src: &str, top: &str, policy: SchedulerPolicy) -> Kernel {
        let unit = parse(src).unwrap();
        let circuit = compile_unit(&unit, top).unwrap();
        Kernel::new(circuit, policy)
    }

    #[test]
    fn kernels_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Kernel>();
    }

    #[test]
    fn combinational_logic_settles() {
        let mut k = kernel(
            r#"
            module m(input a, input b, output w, output v);
              assign w = a & b;
              assign v = ~w;
            endmodule
            "#,
            "m",
            SchedulerPolicy::sim_a(),
        );
        k.poke_name("a", Value::bit(Logic::One)).unwrap();
        k.poke_name("b", Value::bit(Logic::One)).unwrap();
        k.run_until(10).unwrap();
        assert_eq!(k.peek_name("w").unwrap().get(0), Logic::One);
        assert_eq!(k.peek_name("v").unwrap().get(0), Logic::Zero);
    }

    #[test]
    fn dff_captures_on_posedge_only() {
        let mut k = kernel(
            r#"
            module d(input clk, input din, output reg q);
              always @(posedge clk) q <= din;
            endmodule
            "#,
            "d",
            SchedulerPolicy::sim_a(),
        );
        k.poke_name("clk", Value::bit(Logic::Zero)).unwrap();
        k.poke_name("din", Value::bit(Logic::One)).unwrap();
        k.run_until(1).unwrap();
        assert_eq!(
            k.peek_name("q").unwrap().get(0),
            Logic::X,
            "not clocked yet"
        );
        k.poke_name("clk", Value::bit(Logic::One)).unwrap();
        k.run_until(2).unwrap();
        assert_eq!(k.peek_name("q").unwrap().get(0), Logic::One);
        k.poke_name("din", Value::bit(Logic::Zero)).unwrap();
        k.run_until(3).unwrap();
        assert_eq!(k.peek_name("q").unwrap().get(0), Logic::One);
        k.poke_name("clk", Value::bit(Logic::Zero)).unwrap();
        k.run_until(4).unwrap();
        assert_eq!(k.peek_name("q").unwrap().get(0), Logic::One);
    }

    #[test]
    fn nba_swap_works_under_all_policies() {
        let src = r#"
            module s(input clk, output reg a, output reg b);
              initial begin
                a = 0;
                b = 1;
              end
              always @(posedge clk) a <= b;
              always @(posedge clk) b <= a;
            endmodule
        "#;
        for policy in SchedulerPolicy::all() {
            let mut k = kernel(src, "s", policy);
            k.poke_name("clk", Value::bit(Logic::Zero)).unwrap();
            k.run_until(1).unwrap();
            k.poke_name("clk", Value::bit(Logic::One)).unwrap();
            k.run_until(2).unwrap();
            assert_eq!(
                k.peek_name("a").unwrap().get(0),
                Logic::One,
                "{}",
                policy.name
            );
            assert_eq!(k.peek_name("b").unwrap().get(0), Logic::Zero);
        }
    }

    #[test]
    fn initial_stimuli_apply_in_time_order() {
        let mut k = kernel(
            r#"
            module t(output reg [3:0] v);
              initial begin
                v = 0;
                #5 v = 1;
                #5 v = 2;
              end
            endmodule
            "#,
            "t",
            SchedulerPolicy::sim_a(),
        );
        k.run_until(4).unwrap();
        assert_eq!(k.peek_name("v").unwrap().as_u64(), Some(0));
        k.run_until(5).unwrap();
        assert_eq!(k.peek_name("v").unwrap().as_u64(), Some(1));
        k.run_until(100).unwrap();
        assert_eq!(k.peek_name("v").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn combinational_loop_is_detected_under_both_policies() {
        // A ring with odd inversion, loaded with a definite value
        // through a mux so the oscillation is policy-independent.
        for policy in [SchedulerPolicy::sim_a(), SchedulerPolicy::sim_b()] {
            let mut k = kernel(
                r#"
                module l(input sel, input d, output w, output v);
                  assign w = sel ? d : ~v;
                  assign v = w;
                endmodule
                "#,
                "l",
                policy,
            );
            k.poke_name("sel", Value::bit(Logic::One)).unwrap();
            k.poke_name("d", Value::bit(Logic::Zero)).unwrap();
            k.run_until(1).unwrap();
            assert_eq!(k.peek_name("v").unwrap().get(0), Logic::Zero);
            // Release the mux: the loop now inverts itself forever.
            k.poke_name("sel", Value::bit(Logic::Zero)).unwrap();
            let r = k.run_until(2);
            assert!(
                matches!(r, Err(SimError::Runaway { .. })),
                "{:?} under {}",
                r,
                policy.name
            );
        }
    }

    #[test]
    fn waveform_history_collapses_duplicates() {
        let mut k = kernel(
            r#"
            module m(input a, output w);
              assign w = a;
            endmodule
            "#,
            "m",
            SchedulerPolicy::sim_a(),
        );
        k.poke_name("a", Value::bit(Logic::One)).unwrap();
        k.run_until(1).unwrap();
        k.poke_name("a", Value::bit(Logic::Zero)).unwrap();
        k.run_until(2).unwrap();
        let w = k.circuit().signal("w").unwrap();
        let hist = k.waveform().history(w);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].1.get(0), Logic::One);
        assert_eq!(hist[1].1.get(0), Logic::Zero);
    }

    #[test]
    fn indexed_history_matches_scan_history() {
        let mut k = kernel(
            r#"
            module m(input a, input b, output w, output v);
              assign w = a & b;
              assign v = a | b;
            endmodule
            "#,
            "m",
            SchedulerPolicy::sim_a(),
        );
        for (t, name, level) in [
            (1u64, "a", Logic::One),
            (2, "b", Logic::One),
            (3, "a", Logic::Zero),
            (4, "b", Logic::Zero),
        ] {
            k.poke_name(name, Value::bit(level)).unwrap();
            k.run_until(t).unwrap();
        }
        let idx = k.waveform().indexed(k.circuit().signal_count());
        for sig in 0..k.circuit().signal_count() {
            assert_eq!(idx.history(sig), k.waveform().history(sig), "sig {sig}");
        }
        // Out-of-range signal ids read back empty.
        assert!(idx.history(999).is_empty());
    }

    #[test]
    fn eager_policy_sees_continuous_update_mid_process() {
        // Distilled from the paper's race example: a process writes b
        // then immediately reads a = b. Eager propagation sees the new
        // value; queued sees the old one.
        let src = r#"
            module e(input clk, input d, output reg b, output reg seen);
              wire a;
              assign a = b;
              initial begin
                b = 0;
                seen = 0;
              end
              always @(posedge clk) begin
                b = d;
                seen = a;
              end
            endmodule
        "#;
        let drive = |k: &mut Kernel| {
            k.poke_name("clk", Value::bit(Logic::Zero)).unwrap();
            k.poke_name("d", Value::bit(Logic::One)).unwrap();
            k.run_until(1).unwrap();
            k.poke_name("clk", Value::bit(Logic::One)).unwrap();
            k.run_until(2).unwrap();
        };
        let mut eager = kernel(src, "e", SchedulerPolicy::sim_b());
        drive(&mut eager);
        assert_eq!(eager.peek_name("seen").unwrap().get(0), Logic::One);
        let mut queued = kernel(src, "e", SchedulerPolicy::sim_a());
        drive(&mut queued);
        assert_eq!(queued.peek_name("seen").unwrap().get(0), Logic::Zero);
    }

    #[test]
    fn recorder_sees_settles_nested_under_run_until() {
        use obs::TraceRecorder;
        let mut k = kernel(
            r#"
            module d(input clk, input din, output reg q);
              always @(posedge clk) q <= din;
            endmodule
            "#,
            "d",
            SchedulerPolicy::sim_a(),
        );
        let rec = Arc::new(TraceRecorder::new());
        k.set_recorder(rec.clone());
        k.poke_name("din", Value::bit(Logic::One)).unwrap();
        k.poke_name("clk", Value::bit(Logic::One)).unwrap();
        k.run_until(5).unwrap();
        assert_eq!(k.peek_name("q").unwrap().get(0), Logic::One);

        assert!(rec.counter("sim.events") > 0, "activations counted");
        assert!(rec.counter("sim.nba_updates") >= 1, "NBA commit counted");
        let hist = rec.histogram("sim.slot.activations").unwrap();
        assert_eq!(hist.count as usize, rec.span_count("sim.settle"));

        // Every settle span parents under the run_until span.
        let spans = rec.finished_spans();
        let run = spans.iter().find(|s| s.name == "sim.run_until").unwrap();
        let settles: Vec<_> = spans.iter().filter(|s| s.name == "sim.settle").collect();
        assert!(!settles.is_empty());
        for s in &settles {
            assert_eq!(s.parent, Some(run.id));
        }
    }

    #[test]
    fn unknown_names_error() {
        let k = kernel(
            "module m(input a, output w); assign w = a; endmodule",
            "m",
            SchedulerPolicy::sim_a(),
        );
        assert!(matches!(
            k.peek_name("zz"),
            Err(SimError::NoSuchSignal { .. })
        ));
    }
}
