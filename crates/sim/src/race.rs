//! Race detection by cross-policy divergence.
//!
//! "Typically, if different simulators give different results when
//! simulating the same model, there is a race condition in the model
//! being simulated, and the potential for a bug in the real hardware."
//! This module runs one model under several *legal* scheduling policies
//! and reports every signal whose history diverges.
//!
//! Section 6's methodology asks for *exhaustive* scenario exploration:
//! [`sweep`] runs the full `policies × stimulus sets` grid, and
//! [`sweep_parallel`] fans the same grid across threads — kernels are
//! `Send`, and the circuit is shared through one [`Arc`] — using the
//! work-stealing pattern established by `migrate::batch`. Both produce
//! identical, deterministically ordered results.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::elab::{Circuit, SigId};
use crate::kernel::{Kernel, SchedulerPolicy, SimError};
use crate::logic::{Logic, Value};

/// One diverging signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Signal name.
    pub signal: String,
    /// Per-policy collapsed histories `(policy, [(time, value)])`.
    pub histories: Vec<(&'static str, Vec<(u64, Value)>)>,
}

/// Result of a cross-policy comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaceReport {
    /// Policies compared.
    pub policies: Vec<&'static str>,
    /// Signals whose histories diverge across policies.
    pub diverging: Vec<Divergence>,
}

impl RaceReport {
    /// True when any signal diverges — the model has a race.
    pub fn has_race(&self) -> bool {
        !self.diverging.is_empty()
    }
}

/// Runs `circuit` under every policy, driving each kernel with the same
/// testbench closure, and compares per-signal histories. The circuit is
/// shared across kernels through one [`Arc`] — no per-policy deep clone.
///
/// # Errors
///
/// Propagates the first simulation error from any run.
pub fn detect(
    circuit: &Circuit,
    policies: &[SchedulerPolicy],
    drive: impl Fn(&mut Kernel) -> Result<(), SimError>,
) -> Result<RaceReport, SimError> {
    let shared = Arc::new(circuit.clone());
    let mut kernels = Vec::with_capacity(policies.len());
    for policy in policies {
        let mut k = Kernel::new_shared(Arc::clone(&shared), *policy);
        drive(&mut k)?;
        kernels.push(k);
    }
    Ok(compare(&kernels))
}

/// Compares already-run kernels (which must share a circuit layout).
/// Each waveform is indexed once, so the whole comparison costs
/// O(total changes) instead of O(signals × changes).
pub fn compare(kernels: &[Kernel]) -> RaceReport {
    let mut report = RaceReport {
        policies: kernels.iter().map(|k| k.policy().name).collect(),
        diverging: Vec::new(),
    };
    let Some(first) = kernels.first() else {
        return report;
    };
    let signal_count = first.circuit().signal_count();
    let indexed: Vec<_> = kernels
        .iter()
        .map(|k| k.waveform().indexed(signal_count))
        .collect();
    for sig in 0..signal_count {
        let histories: Vec<(&'static str, Vec<(u64, Value)>)> = kernels
            .iter()
            .zip(&indexed)
            .map(|(k, idx)| (k.policy().name, idx.history(sig)))
            .collect();
        let all_same = histories.windows(2).all(|w| w[0].1 == w[1].1);
        if !all_same {
            report.diverging.push(Divergence {
                signal: first.circuit().signals[sig].name.clone(),
                histories,
            });
        }
    }
    report
}

/// Canonical example models used by tests, examples, and benches.
pub mod models {
    /// The paper's Section 3.1 example, adapted to a clocked process:
    /// a continuous assignment read back in the same activation that
    /// wrote its operand. Whether `a` has updated by the time the `if`
    /// reads it depends on whether the simulator propagates continuous
    /// assignments eagerly or through the event queue — both legal.
    pub const PAPER_RACE: &str = r#"
        module race(input clk, input d, output reg b, output reg mismatch);
          wire a;
          wire c;
          assign c = 1;
          assign a = b & c;
          initial begin
            b = 0;
            mismatch = 0;
          end
          always @(posedge clk) begin
            b = d;
            if (a != d)      // which value of a?
              mismatch = 1;
          end
        endmodule
    "#;

    /// An inter-process order race: two blocking-assignment processes
    /// triggered by the same edge, one reading what the other writes.
    /// FIFO and LIFO activation orders legally disagree.
    pub const ORDER_RACE: &str = r#"
        module order(input clk, input d, output reg x, output reg y);
          initial begin
            x = 0;
            y = 0;
          end
          always @(posedge clk) x = d;
          always @(posedge clk) y = x;
        endmodule
    "#;

    /// The race-free rewrite: non-blocking assignments decouple read
    /// and write, so every policy agrees.
    pub const RACE_FREE: &str = r#"
        module clean(input clk, input d, output reg x, output reg y);
          initial begin
            x = 0;
            y = 0;
          end
          always @(posedge clk) x <= d;
          always @(posedge clk) y <= x;
        endmodule
    "#;
}

/// Drives a clock/data testbench shared by the race experiments:
/// `cycles` rising edges with `d` toggling every cycle. Signal ids are
/// resolved once up front, so the per-event cost is a plain `poke`.
pub fn clocked_testbench(kernel: &mut Kernel, cycles: u64) -> Result<(), SimError> {
    let clk = kernel.lookup("clk")?;
    let d = kernel.lookup("d")?;
    let mut t = 0u64;
    kernel.poke(clk, Value::bit(Logic::Zero));
    kernel.poke(d, Value::bit(Logic::Zero));
    kernel.run_until(t)?;
    for cycle in 0..cycles {
        t += 5;
        kernel.poke(
            d,
            Value::bit(if cycle % 2 == 0 {
                Logic::One
            } else {
                Logic::Zero
            }),
        );
        kernel.run_until(t)?;
        t += 5;
        kernel.poke(clk, Value::bit(Logic::One));
        kernel.run_until(t)?;
        t += 5;
        kernel.poke(clk, Value::bit(Logic::Zero));
        kernel.run_until(t)?;
    }
    Ok(())
}

/// A data-driven stimulus set: a named sequence of timed pokes. Unlike
/// a testbench closure, a `Stim` is plain `Send + Sync` data, so one
/// slice of them can be shared untouched across sweep worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct Stim {
    /// Display name (appears in sweep results).
    pub name: String,
    /// `(time, signal name, value)` pokes, expected in time order.
    pub events: Vec<(u64, String, Value)>,
    /// Final time to settle to after the last event.
    pub run_to: u64,
}

impl Stim {
    /// The canonical clock/data waveform of [`clocked_testbench`] as
    /// data: `cycles` rising edges with `d` toggling every cycle.
    pub fn clocked(name: impl Into<String>, cycles: u64) -> Stim {
        let mut events = vec![
            (0, "clk".to_string(), Value::bit(Logic::Zero)),
            (0, "d".to_string(), Value::bit(Logic::Zero)),
        ];
        let mut t = 0u64;
        for cycle in 0..cycles {
            t += 5;
            let level = if cycle % 2 == 0 {
                Logic::One
            } else {
                Logic::Zero
            };
            events.push((t, "d".to_string(), Value::bit(level)));
            t += 5;
            events.push((t, "clk".to_string(), Value::bit(Logic::One)));
            t += 5;
            events.push((t, "clk".to_string(), Value::bit(Logic::Zero)));
        }
        Stim {
            name: name.into(),
            events,
            run_to: t + 5,
        }
    }

    /// Applies the stimulus to a kernel: all pokes sharing a timestamp
    /// land before that time slot settles (matching how a closure
    /// testbench pokes then runs), and the kernel finally settles at
    /// `run_to`. Every distinct signal name is resolved exactly once.
    ///
    /// # Errors
    ///
    /// Fails on unknown signal names or simulation runaway.
    pub fn apply(&self, kernel: &mut Kernel) -> Result<(), SimError> {
        let mut ids: BTreeMap<&str, SigId> = BTreeMap::new();
        for (_, name, _) in &self.events {
            if !ids.contains_key(name.as_str()) {
                ids.insert(name, kernel.lookup(name)?);
            }
        }
        let mut i = 0;
        while i < self.events.len() {
            let t = self.events[i].0;
            while i < self.events.len() && self.events[i].0 == t {
                let (_, name, v) = &self.events[i];
                kernel.poke(ids[name.as_str()], v.clone());
                i += 1;
            }
            kernel.run_until(t)?;
        }
        kernel.run_until(self.run_to)
    }
}

/// The outcome of one sweep cell: one stimulus set compared across all
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The stimulus set's name.
    pub stim: String,
    /// The cross-policy comparison for that stimulus.
    pub report: RaceReport,
}

/// Runs the `policies × stims` divergence grid sequentially. Results
/// are in `stims` order.
///
/// # Errors
///
/// Returns the first error in `stims` order.
pub fn sweep(
    circuit: &Arc<Circuit>,
    policies: &[SchedulerPolicy],
    stims: &[Stim],
) -> Result<Vec<SweepResult>, SimError> {
    stims
        .iter()
        .map(|s| sweep_one(circuit, policies, s))
        .collect()
}

fn sweep_one(
    circuit: &Arc<Circuit>,
    policies: &[SchedulerPolicy],
    stim: &Stim,
) -> Result<SweepResult, SimError> {
    let mut kernels = Vec::with_capacity(policies.len());
    for policy in policies {
        let mut k = Kernel::new_shared(Arc::clone(circuit), *policy);
        stim.apply(&mut k)?;
        kernels.push(k);
    }
    Ok(SweepResult {
        stim: stim.name.clone(),
        report: compare(&kernels),
    })
}

/// Per-worker deques with stealing: a worker pops its own queue from
/// the front and steals from the back of others' — the same discipline
/// as `migrate::batch`, which keeps contention low while bounding
/// imbalance to one job.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    fn new(workers: usize, jobs: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for job in 0..jobs {
            queues[job % workers].push_back(job);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    fn take(&self, worker: usize) -> Option<usize> {
        if let Some(job) = self.queues[worker].lock().expect("queue").pop_front() {
            return Some(job);
        }
        for offset in 1..self.queues.len() {
            let victim = (worker + offset) % self.queues.len();
            if let Some(job) = self.queues[victim].lock().expect("queue").pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// Runs the `policies × stims` divergence grid across `threads` worker
/// threads. Each job is one stimulus set (all policies run within the
/// job, so per-stim comparisons never cross threads); jobs are
/// distributed round-robin and rebalanced by work stealing. The result
/// vector is byte-identical to [`sweep`]'s regardless of thread count
/// or steal timing — results land in index-addressed slots.
///
/// # Errors
///
/// Returns the first error in `stims` order (deterministic even when
/// several jobs fail on different threads).
pub fn sweep_parallel(
    circuit: &Arc<Circuit>,
    policies: &[SchedulerPolicy],
    stims: &[Stim],
    threads: usize,
) -> Result<Vec<SweepResult>, SimError> {
    let workers = threads.max(1).min(stims.len().max(1));
    if workers <= 1 {
        return sweep(circuit, policies, stims);
    }
    let queues = StealQueues::new(workers, stims.len());
    let mut slots: Vec<Option<Result<SweepResult, SimError>>> = vec![None; stims.len()];
    std::thread::scope(|scope| {
        // The calling thread serves as worker 0 instead of blocking in
        // join(): only `workers - 1` threads are spawned, and on small
        // grids the caller does real work while the spawns warm up.
        let handles: Vec<_> = (1..workers)
            .map(|worker| {
                let queues = &queues;
                let circuit = Arc::clone(circuit);
                scope.spawn(move || {
                    let mut done: Vec<(usize, Result<SweepResult, SimError>)> = Vec::new();
                    while let Some(job) = queues.take(worker) {
                        done.push((job, sweep_one(&circuit, policies, &stims[job])));
                    }
                    done
                })
            })
            .collect();
        while let Some(job) = queues.take(0) {
            slots[job] = Some(sweep_one(circuit, policies, &stims[job]));
        }
        for handle in handles {
            for (job, result) in handle.join().expect("sweep worker panicked") {
                slots[job] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use hdl::parser::parse;

    fn circuit(src: &str, top: &str) -> Circuit {
        compile_unit(&parse(src).unwrap(), top).unwrap()
    }

    #[test]
    fn paper_race_diverges_between_eager_and_queued() {
        let c = circuit(models::PAPER_RACE, "race");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 4)).unwrap();
        assert!(report.has_race());
        assert!(
            report.diverging.iter().any(|d| d.signal == "mismatch"),
            "diverging: {:?}",
            report
                .diverging
                .iter()
                .map(|d| &d.signal)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn order_race_diverges_between_fifo_and_lifo() {
        let c = circuit(models::ORDER_RACE, "order");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 4)).unwrap();
        assert!(report.has_race());
        assert!(report.diverging.iter().any(|d| d.signal == "y"));
    }

    #[test]
    fn race_free_model_agrees_everywhere() {
        let c = circuit(models::RACE_FREE, "clean");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 6)).unwrap();
        assert!(!report.has_race(), "diverging: {:?}", report.diverging);
    }

    #[test]
    fn single_policy_never_diverges_with_itself() {
        let c = circuit(models::PAPER_RACE, "race");
        let report = detect(
            &c,
            &[SchedulerPolicy::sim_a(), SchedulerPolicy::sim_a()],
            |k| clocked_testbench(k, 4),
        )
        .unwrap();
        assert!(!report.has_race());
    }

    #[test]
    fn clocked_stim_replays_the_closure_testbench_exactly() {
        let c = circuit(models::PAPER_RACE, "race");
        let shared = Arc::new(c.clone());
        for policy in SchedulerPolicy::all() {
            let mut via_closure = Kernel::new_shared(Arc::clone(&shared), policy);
            clocked_testbench(&mut via_closure, 4).unwrap();
            let mut via_stim = Kernel::new_shared(Arc::clone(&shared), policy);
            Stim::clocked("c4", 4).apply(&mut via_stim).unwrap();
            // Identical waveforms up to the stim's final settle time.
            assert_eq!(
                via_closure.waveform().changes,
                via_stim.waveform().changes,
                "{}",
                policy.name
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_for_all_thread_counts() {
        let shared = Arc::new(circuit(models::PAPER_RACE, "race"));
        let stims: Vec<Stim> = (1..=7)
            .map(|cycles| Stim::clocked(format!("cycles{cycles}"), cycles))
            .collect();
        let policies = SchedulerPolicy::all();
        let sequential = sweep(&shared, &policies, &stims).unwrap();
        assert_eq!(sequential.len(), stims.len());
        assert!(sequential.iter().all(|r| r.report.has_race()));
        for threads in [1, 2, 3, 8] {
            let parallel = sweep_parallel(&shared, &policies, &stims, threads).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sweep_reports_the_first_error_deterministically() {
        let shared = Arc::new(circuit(models::ORDER_RACE, "order"));
        let mut bad = Stim::clocked("bad", 2);
        bad.events
            .push((bad.run_to, "nope".to_string(), Value::bit(Logic::One)));
        let stims = vec![Stim::clocked("ok", 2), bad.clone(), bad];
        let err = sweep_parallel(&shared, &SchedulerPolicy::all(), &stims, 4).unwrap_err();
        assert!(matches!(err, SimError::NoSuchSignal { ref name } if name == "nope"));
    }
}
