//! Race detection by cross-policy divergence.
//!
//! "Typically, if different simulators give different results when
//! simulating the same model, there is a race condition in the model
//! being simulated, and the potential for a bug in the real hardware."
//! This module runs one model under several *legal* scheduling policies
//! and reports every signal whose history diverges.

use crate::elab::Circuit;
use crate::kernel::{Kernel, SchedulerPolicy, SimError};
use crate::logic::Value;

/// One diverging signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Signal name.
    pub signal: String,
    /// Per-policy collapsed histories `(policy, [(time, value)])`.
    pub histories: Vec<(&'static str, Vec<(u64, Value)>)>,
}

/// Result of a cross-policy comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaceReport {
    /// Policies compared.
    pub policies: Vec<&'static str>,
    /// Signals whose histories diverge across policies.
    pub diverging: Vec<Divergence>,
}

impl RaceReport {
    /// True when any signal diverges — the model has a race.
    pub fn has_race(&self) -> bool {
        !self.diverging.is_empty()
    }
}

/// Runs `circuit` under every policy, driving each kernel with the same
/// testbench closure, and compares per-signal histories.
///
/// # Errors
///
/// Propagates the first simulation error from any run.
pub fn detect(
    circuit: &Circuit,
    policies: &[SchedulerPolicy],
    drive: impl Fn(&mut Kernel) -> Result<(), SimError>,
) -> Result<RaceReport, SimError> {
    let mut kernels = Vec::with_capacity(policies.len());
    for policy in policies {
        let mut k = Kernel::new(circuit.clone(), *policy);
        drive(&mut k)?;
        kernels.push(k);
    }
    Ok(compare(&kernels))
}

/// Compares already-run kernels (which must share a circuit layout).
pub fn compare(kernels: &[Kernel]) -> RaceReport {
    let mut report = RaceReport {
        policies: kernels.iter().map(|k| k.policy().name).collect(),
        diverging: Vec::new(),
    };
    let Some(first) = kernels.first() else {
        return report;
    };
    for sig in 0..first.circuit().signal_count() {
        let histories: Vec<(&'static str, Vec<(u64, Value)>)> = kernels
            .iter()
            .map(|k| (k.policy().name, k.waveform().history(sig)))
            .collect();
        let all_same = histories.windows(2).all(|w| w[0].1 == w[1].1);
        if !all_same {
            report.diverging.push(Divergence {
                signal: first.circuit().signals[sig].name.clone(),
                histories,
            });
        }
    }
    report
}

/// Canonical example models used by tests, examples, and benches.
pub mod models {
    /// The paper's Section 3.1 example, adapted to a clocked process:
    /// a continuous assignment read back in the same activation that
    /// wrote its operand. Whether `a` has updated by the time the `if`
    /// reads it depends on whether the simulator propagates continuous
    /// assignments eagerly or through the event queue — both legal.
    pub const PAPER_RACE: &str = r#"
        module race(input clk, input d, output reg b, output reg mismatch);
          wire a;
          wire c;
          assign c = 1;
          assign a = b & c;
          initial begin
            b = 0;
            mismatch = 0;
          end
          always @(posedge clk) begin
            b = d;
            if (a != d)      // which value of a?
              mismatch = 1;
          end
        endmodule
    "#;

    /// An inter-process order race: two blocking-assignment processes
    /// triggered by the same edge, one reading what the other writes.
    /// FIFO and LIFO activation orders legally disagree.
    pub const ORDER_RACE: &str = r#"
        module order(input clk, input d, output reg x, output reg y);
          initial begin
            x = 0;
            y = 0;
          end
          always @(posedge clk) x = d;
          always @(posedge clk) y = x;
        endmodule
    "#;

    /// The race-free rewrite: non-blocking assignments decouple read
    /// and write, so every policy agrees.
    pub const RACE_FREE: &str = r#"
        module clean(input clk, input d, output reg x, output reg y);
          initial begin
            x = 0;
            y = 0;
          end
          always @(posedge clk) x <= d;
          always @(posedge clk) y <= x;
        endmodule
    "#;
}

/// Drives a clock/data testbench shared by the race experiments:
/// `cycles` rising edges with `d` toggling every cycle.
pub fn clocked_testbench(kernel: &mut Kernel, cycles: u64) -> Result<(), SimError> {
    use crate::logic::Logic;
    let mut t = 0u64;
    kernel.poke_name("clk", Value::bit(Logic::Zero))?;
    kernel.poke_name("d", Value::bit(Logic::Zero))?;
    kernel.run_until(t)?;
    for cycle in 0..cycles {
        t += 5;
        kernel.poke_name(
            "d",
            Value::bit(if cycle % 2 == 0 {
                Logic::One
            } else {
                Logic::Zero
            }),
        )?;
        kernel.run_until(t)?;
        t += 5;
        kernel.poke_name("clk", Value::bit(Logic::One))?;
        kernel.run_until(t)?;
        t += 5;
        kernel.poke_name("clk", Value::bit(Logic::Zero))?;
        kernel.run_until(t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::compile_unit;
    use hdl::parser::parse;

    fn circuit(src: &str, top: &str) -> Circuit {
        compile_unit(&parse(src).unwrap(), top).unwrap()
    }

    #[test]
    fn paper_race_diverges_between_eager_and_queued() {
        let c = circuit(models::PAPER_RACE, "race");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 4)).unwrap();
        assert!(report.has_race());
        assert!(
            report.diverging.iter().any(|d| d.signal == "mismatch"),
            "diverging: {:?}",
            report
                .diverging
                .iter()
                .map(|d| &d.signal)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn order_race_diverges_between_fifo_and_lifo() {
        let c = circuit(models::ORDER_RACE, "order");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 4)).unwrap();
        assert!(report.has_race());
        assert!(report.diverging.iter().any(|d| d.signal == "y"));
    }

    #[test]
    fn race_free_model_agrees_everywhere() {
        let c = circuit(models::RACE_FREE, "clean");
        let report = detect(&c, &SchedulerPolicy::all(), |k| clocked_testbench(k, 6)).unwrap();
        assert!(!report.has_race(), "diverging: {:?}", report.diverging);
    }

    #[test]
    fn single_policy_never_diverges_with_itself() {
        let c = circuit(models::PAPER_RACE, "race");
        let report = detect(
            &c,
            &[SchedulerPolicy::sim_a(), SchedulerPolicy::sim_a()],
            |k| clocked_testbench(k, 4),
        )
        .unwrap();
        assert!(!report.has_race());
    }
}
