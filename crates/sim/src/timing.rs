//! Setup/hold timing checks with a backward-compatibility switch.
//!
//! Section 3.1: "Simulator timing models can change as new versions are
//! released, causing simulation timing results to drift unless
//! backwards compatibility is specifically addressed. For example,
//! Verilog-XL ... supports the `+pre_16a_path` command line option.
//! This option forces simulators with version 1.6a or later to use the
//! same timing check behavior as was used prior to the 1.6a version."
//!
//! Here the two versions differ in whether the check windows are open
//! or half-closed: a data edge landing exactly on the window boundary
//! violates under the new semantics but not the old — precisely the
//! kind of drift the flag exists to paper over.

use crate::elab::SigId;
use crate::kernel::Waveform;
use crate::logic::Logic;

/// Which timing-check semantics to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatMode {
    /// Pre-1.6a behaviour (`+pre_16a_path`): open windows — boundary
    /// hits do not violate.
    Pre16a,
    /// Current behaviour: half-closed windows — boundary hits violate.
    Post16a,
}

/// Violation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Data changed too close before the clock edge.
    Setup,
    /// Data changed too close after the clock edge.
    Hold,
}

/// One timing violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingViolation {
    /// The clock edge time.
    pub edge_at: u64,
    /// The offending data-change time.
    pub data_at: u64,
    /// Setup or hold.
    pub kind: ViolationKind,
}

/// A setup/hold check specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetupHoldCheck {
    /// Clock signal.
    pub clk: SigId,
    /// Data signal.
    pub data: SigId,
    /// Required setup time.
    pub setup: u64,
    /// Required hold time.
    pub hold: u64,
}

/// Extracts the rising-edge times of `clk` from a waveform.
pub fn posedges(wave: &Waveform, clk: SigId) -> Vec<u64> {
    rising_edges(&wave.history(clk))
}

fn rising_edges(history: &[(u64, crate::logic::Value)]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut prev = Logic::X;
    for (t, v) in history {
        let bit = v.get(0);
        if bit == Logic::One && prev != Logic::One {
            out.push(*t);
        }
        prev = bit;
    }
    out
}

/// Runs the check over a recorded waveform. The waveform is indexed
/// once so both signal histories come out of a single pass over the
/// change log.
pub fn check(wave: &Waveform, spec: &SetupHoldCheck, mode: CompatMode) -> Vec<TimingViolation> {
    let idx = wave.indexed(spec.clk.max(spec.data) + 1);
    let edges = rising_edges(&idx.history(spec.clk));
    let data_changes: Vec<u64> = idx.history(spec.data).iter().map(|(t, _)| *t).collect();
    let mut out = Vec::new();
    for &edge in &edges {
        for &d in &data_changes {
            let setup_hit = match mode {
                // Old: open interval (edge - setup, edge).
                CompatMode::Pre16a => d + spec.setup > edge && d < edge,
                // New: half-closed [edge - setup, edge).
                CompatMode::Post16a => d + spec.setup >= edge && d < edge,
            };
            if setup_hit {
                out.push(TimingViolation {
                    edge_at: edge,
                    data_at: d,
                    kind: ViolationKind::Setup,
                });
            }
            let hold_hit = match mode {
                // Old: open interval (edge, edge + hold).
                CompatMode::Pre16a => d > edge && d < edge + spec.hold,
                // New: half-closed (edge, edge + hold].
                CompatMode::Post16a => d > edge && d <= edge + spec.hold,
            };
            if hold_hit {
                out.push(TimingViolation {
                    edge_at: edge,
                    data_at: d,
                    kind: ViolationKind::Hold,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Value;

    /// Builds a waveform with a clock edge at `edge` and data changes
    /// at the given times. Signal 0 is clk, 1 is data.
    fn wave(edge: u64, data_at: &[u64]) -> Waveform {
        let mut w = Waveform::default();
        w.changes.push((0, 0, Value::bit(Logic::Zero)));
        w.changes.push((0, 1, Value::bit(Logic::Zero)));
        for (i, &t) in data_at.iter().enumerate() {
            w.changes.push((
                t,
                1,
                Value::bit(if i % 2 == 0 { Logic::One } else { Logic::Zero }),
            ));
        }
        w.changes.push((edge, 0, Value::bit(Logic::One)));
        w.changes.sort_by_key(|(t, _, _)| *t);
        w
    }

    const SPEC: SetupHoldCheck = SetupHoldCheck {
        clk: 0,
        data: 1,
        setup: 3,
        hold: 2,
    };

    #[test]
    fn clear_violations_fire_in_both_modes() {
        // Data at edge-1: inside both setup windows.
        let w = wave(10, &[9]);
        assert_eq!(check(&w, &SPEC, CompatMode::Pre16a).len(), 1);
        assert_eq!(check(&w, &SPEC, CompatMode::Post16a).len(), 1);
    }

    #[test]
    fn boundary_setup_hit_differs_across_versions() {
        // Data at exactly edge - setup = 7.
        let w = wave(10, &[7]);
        assert!(check(&w, &SPEC, CompatMode::Pre16a).is_empty());
        let post = check(&w, &SPEC, CompatMode::Post16a);
        assert_eq!(post.len(), 1);
        assert_eq!(post[0].kind, ViolationKind::Setup);
    }

    #[test]
    fn boundary_hold_hit_differs_across_versions() {
        // Data at exactly edge + hold = 12.
        let w = wave(10, &[12]);
        assert!(check(&w, &SPEC, CompatMode::Pre16a).is_empty());
        let post = check(&w, &SPEC, CompatMode::Post16a);
        assert_eq!(post.len(), 1);
        assert_eq!(post[0].kind, ViolationKind::Hold);
    }

    #[test]
    fn safe_data_is_clean_in_both_modes() {
        let w = wave(10, &[2, 20]);
        assert!(check(&w, &SPEC, CompatMode::Pre16a).is_empty());
        assert!(check(&w, &SPEC, CompatMode::Post16a).is_empty());
    }

    #[test]
    fn posedge_extraction_ignores_x_and_falls() {
        let mut w = Waveform::default();
        w.changes.push((1, 0, Value::bit(Logic::One))); // x -> 1: edge
        w.changes.push((2, 0, Value::bit(Logic::Zero)));
        w.changes.push((3, 0, Value::bit(Logic::One))); // 0 -> 1: edge
        w.changes.push((4, 0, Value::bit(Logic::X)));
        w.changes.push((5, 0, Value::bit(Logic::Zero)));
        assert_eq!(posedges(&w, 0), vec![1, 3]);
    }
}
