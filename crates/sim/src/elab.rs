//! Elaboration: HDL AST → simulatable circuit IR.

use std::collections::BTreeMap;
use std::fmt;

use hdl::ast::{self, Edge, Item, Module, Sensitivity};

use crate::logic::{Logic, Value};

/// Signal identifier within a [`Circuit`].
pub type SigId = usize;

/// A simulated signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDef {
    /// Signal name (flat).
    pub name: String,
    /// Bit width.
    pub width: usize,
    /// Declared LSB index (bit selects are relative to it).
    pub lsb: i64,
    /// True for top-level input ports (drivable from outside).
    pub is_input: bool,
}

/// Elaborated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Whole-signal read.
    Sig(SigId),
    /// Bit select.
    Bit(SigId, Box<SExpr>),
    /// Constant.
    Const(Value),
    /// Unary op.
    Unary(ast::UnOp, Box<SExpr>),
    /// Binary op.
    Binary(ast::BinOp, Box<SExpr>, Box<SExpr>),
    /// Conditional.
    Ternary(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Concatenation, MSB-first operand order.
    Concat(Vec<SExpr>),
}

impl SExpr {
    /// Signals read by the expression.
    pub fn reads(&self, out: &mut Vec<SigId>) {
        match self {
            SExpr::Sig(s) => out.push(*s),
            SExpr::Bit(s, i) => {
                out.push(*s);
                i.reads(out);
            }
            SExpr::Const(_) => {}
            SExpr::Unary(_, e) => e.reads(out),
            SExpr::Binary(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            SExpr::Ternary(c, a, b) => {
                c.reads(out);
                a.reads(out);
                b.reads(out);
            }
            SExpr::Concat(items) => {
                for e in items {
                    e.reads(out);
                }
            }
        }
    }
}

/// Elaborated assignment target.
#[derive(Debug, Clone, PartialEq)]
pub struct LRef {
    /// Target signal.
    pub sig: SigId,
    /// Bit select, if any.
    pub index: Option<SExpr>,
}

/// Elaborated statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SStmt {
    /// Sequence.
    Block(Vec<SStmt>),
    /// Conditional.
    If {
        /// Condition.
        cond: SExpr,
        /// Then branch.
        then_s: Box<SStmt>,
        /// Else branch.
        else_s: Option<Box<SStmt>>,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LRef,
        /// Source.
        rhs: SExpr,
        /// Blocking (`=`) vs non-blocking (`<=`).
        blocking: bool,
    },
    /// Case dispatch.
    Case {
        /// Subject.
        subject: SExpr,
        /// Arms.
        arms: Vec<(Vec<SExpr>, SStmt)>,
        /// Default arm.
        default: Option<Box<SStmt>>,
    },
    /// No-op.
    Nop,
}

/// A process.
#[derive(Debug, Clone, PartialEq)]
pub enum Proc {
    /// Continuous assignment: re-evaluated whenever an operand changes.
    Continuous {
        /// Target.
        lhs: LRef,
        /// Source.
        rhs: SExpr,
    },
    /// Always block with an event list.
    Always {
        /// `(edge, signal)` trigger terms.
        events: Vec<(Edge, SigId)>,
        /// Body, executed atomically per trigger.
        body: SStmt,
    },
}

/// A scheduled stimulus from an `initial` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Absolute activation time.
    pub at: u64,
    /// Statement to run.
    pub body: SStmt,
}

/// An elaborated, simulatable circuit.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Circuit name (from the module).
    pub name: String,
    /// Signals.
    pub signals: Vec<SignalDef>,
    by_name: BTreeMap<String, SigId>,
    /// Processes.
    pub procs: Vec<Proc>,
    /// Initial-block stimuli, time-sorted.
    pub stimuli: Vec<Stimulus>,
}

impl Circuit {
    /// Looks a signal up by name.
    pub fn signal(&self, name: &str) -> Option<SigId> {
        self.by_name.get(name).copied()
    }

    /// Signal count.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }
}

/// An elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// An expression references an undeclared signal.
    UnknownSignal {
        /// Signal name.
        name: String,
    },
    /// The module still contains instances — flatten first.
    HierarchyPresent {
        /// Instance name.
        inst: String,
    },
    /// Free-running `always` blocks are not simulatable here.
    FreeRunningAlways {
        /// Source line.
        line: usize,
    },
    /// `#` delays are only supported in `initial` blocks.
    DelayOutsideInitial {
        /// Source line.
        line: usize,
    },
    /// A based literal could not be decoded.
    BadLiteral {
        /// The literal's digit text.
        digits: String,
    },
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            ElabError::HierarchyPresent { inst } => {
                write!(f, "instance `{inst}` present; flatten before simulation")
            }
            ElabError::FreeRunningAlways { line } => {
                write!(f, "line {line}: free-running always not supported")
            }
            ElabError::DelayOutsideInitial { line } => {
                write!(f, "line {line}: # delay outside initial block")
            }
            ElabError::BadLiteral { digits } => write!(f, "bad literal digits `{digits}`"),
        }
    }
}

impl std::error::Error for ElabError {}

/// Decodes a based literal into a [`Value`] of the declared width.
pub fn decode_based(width: u32, digits: &str, base: char) -> Result<Value, ElabError> {
    let w = width.max(1) as usize;
    let bad = || ElabError::BadLiteral {
        digits: digits.to_string(),
    };
    let mut bits: Vec<Logic> = Vec::new(); // MSB-first while building
    match base {
        'b' => {
            for c in digits.chars() {
                bits.push(Logic::from_char(c).ok_or_else(bad)?);
            }
        }
        'h' => {
            for c in digits.chars() {
                match c {
                    'x' => bits.extend([Logic::X; 4]),
                    'z' => bits.extend([Logic::Z; 4]),
                    _ => {
                        let v = c.to_digit(16).ok_or_else(bad)?;
                        for i in (0..4).rev() {
                            bits.push(if (v >> i) & 1 == 1 {
                                Logic::One
                            } else {
                                Logic::Zero
                            });
                        }
                    }
                }
            }
        }
        'd' => {
            let v: u64 = digits.parse().map_err(|_| bad())?;
            return Ok(Value::from_u64(v, w));
        }
        _ => return Err(bad()),
    }
    // Convert MSB-first build order to LSB-first and fit the width.
    bits.reverse();
    bits.resize(w, Logic::Zero);
    bits.truncate(w);
    Ok(Value::from_bits(&bits))
}

struct Elab {
    circuit: Circuit,
}

impl Elab {
    fn sig(&self, name: &str) -> Result<SigId, ElabError> {
        self.circuit
            .signal(name)
            .ok_or_else(|| ElabError::UnknownSignal {
                name: name.to_string(),
            })
    }

    fn expr(&self, e: &ast::Expr) -> Result<SExpr, ElabError> {
        Ok(match e {
            ast::Expr::Ident(n) => SExpr::Sig(self.sig(n)?),
            ast::Expr::Index(n, i) => SExpr::Bit(self.sig(n)?, Box::new(self.expr(i)?)),
            ast::Expr::Int(v) => SExpr::Const(Value::from_u64(*v, 64)),
            ast::Expr::Based {
                width,
                digits,
                base,
            } => SExpr::Const(decode_based(*width, digits, *base)?),
            ast::Expr::Unary(op, x) => SExpr::Unary(*op, Box::new(self.expr(x)?)),
            ast::Expr::Binary(op, a, b) => {
                SExpr::Binary(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            ast::Expr::Ternary(c, a, b) => SExpr::Ternary(
                Box::new(self.expr(c)?),
                Box::new(self.expr(a)?),
                Box::new(self.expr(b)?),
            ),
            ast::Expr::Concat(items) => SExpr::Concat(
                items
                    .iter()
                    .map(|x| self.expr(x))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    fn lref(&self, l: &ast::LValue) -> Result<LRef, ElabError> {
        Ok(LRef {
            sig: self.sig(&l.name)?,
            index: l.index.as_ref().map(|i| self.expr(i)).transpose()?,
        })
    }

    fn stmt(&self, s: &ast::Stmt) -> Result<SStmt, ElabError> {
        Ok(match s {
            ast::Stmt::Block(items) => SStmt::Block(
                items
                    .iter()
                    .map(|x| self.stmt(x))
                    .collect::<Result<_, _>>()?,
            ),
            ast::Stmt::If {
                cond,
                then_s,
                else_s,
            } => SStmt::If {
                cond: self.expr(cond)?,
                then_s: Box::new(self.stmt(then_s)?),
                else_s: else_s
                    .as_ref()
                    .map(|e| self.stmt(e).map(Box::new))
                    .transpose()?,
            },
            ast::Stmt::Assign {
                lhs, rhs, blocking, ..
            } => SStmt::Assign {
                lhs: self.lref(lhs)?,
                rhs: self.expr(rhs)?,
                blocking: *blocking,
            },
            ast::Stmt::Delay { stmt, .. } => {
                // Reaching here means a delay outside initial.
                let line = first_line(stmt).unwrap_or(0);
                return Err(ElabError::DelayOutsideInitial { line });
            }
            ast::Stmt::Case {
                subject,
                arms,
                default,
            } => SStmt::Case {
                subject: self.expr(subject)?,
                arms: arms
                    .iter()
                    .map(|(vals, body)| {
                        Ok((
                            vals.iter()
                                .map(|v| self.expr(v))
                                .collect::<Result<Vec<_>, ElabError>>()?,
                            self.stmt(body)?,
                        ))
                    })
                    .collect::<Result<_, ElabError>>()?,
                default: default
                    .as_ref()
                    .map(|d| self.stmt(d).map(Box::new))
                    .transpose()?,
            },
            ast::Stmt::Nop => SStmt::Nop,
        })
    }

    /// Unrolls an initial body into time-stamped stimuli.
    fn unroll_initial(
        &self,
        body: &ast::Stmt,
        t: &mut u64,
        out: &mut Vec<Stimulus>,
    ) -> Result<(), ElabError> {
        match body {
            ast::Stmt::Block(items) => {
                for s in items {
                    self.unroll_initial(s, t, out)?;
                }
            }
            ast::Stmt::Delay { amount, stmt } => {
                *t += amount;
                self.unroll_initial(stmt, t, out)?;
            }
            other => out.push(Stimulus {
                at: *t,
                body: self.stmt(other)?,
            }),
        }
        Ok(())
    }
}

fn first_line(s: &ast::Stmt) -> Option<usize> {
    match s {
        ast::Stmt::Assign { line, .. } => Some(*line),
        ast::Stmt::Block(items) => items.iter().find_map(first_line),
        ast::Stmt::If { then_s, .. } => first_line(then_s),
        ast::Stmt::Delay { stmt, .. } => first_line(stmt),
        ast::Stmt::Case { arms, .. } => arms.iter().find_map(|(_, b)| first_line(b)),
        ast::Stmt::Nop => None,
    }
}

/// Elaborates a flat module into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ElabError`] when the module still contains hierarchy,
/// free-running always blocks, delays outside initial blocks, unknown
/// signals, or undecodable literals.
pub fn compile(module: &Module) -> Result<Circuit, ElabError> {
    let mut circuit = Circuit {
        name: module.name.clone(),
        ..Circuit::default()
    };
    for net in &module.nets {
        let id = circuit.signals.len();
        let is_input = module
            .port(&net.name)
            .is_some_and(|p| p.dir == ast::PortDir::Input);
        circuit.signals.push(SignalDef {
            name: net.name.clone(),
            width: net.width() as usize,
            lsb: net.range.map(|(m, l)| m.min(l)).unwrap_or(0),
            is_input,
        });
        circuit.by_name.insert(net.name.clone(), id);
    }

    let elab = Elab { circuit };
    let mut procs = Vec::new();
    let mut stimuli = Vec::new();

    for item in &module.items {
        match item {
            Item::Assign { lhs, rhs, .. } => {
                procs.push(Proc::Continuous {
                    lhs: elab.lref(lhs)?,
                    rhs: elab.expr(rhs)?,
                });
            }
            Item::Always {
                trigger,
                body,
                line,
            } => {
                let events: Vec<(Edge, SigId)> = match trigger {
                    Sensitivity::List(list) => list
                        .iter()
                        .map(|e| Ok((e.edge, elab.sig(&e.signal)?)))
                        .collect::<Result<_, ElabError>>()?,
                    Sensitivity::Star => {
                        let reads = body.reads();
                        reads
                            .iter()
                            .map(|s| Ok((Edge::Any, elab.sig(s)?)))
                            .collect::<Result<_, ElabError>>()?
                    }
                    Sensitivity::FreeRunning => {
                        return Err(ElabError::FreeRunningAlways { line: *line })
                    }
                };
                procs.push(Proc::Always {
                    events,
                    body: elab.stmt(body)?,
                });
            }
            Item::Initial { body, .. } => {
                let mut t = 0u64;
                elab.unroll_initial(body, &mut t, &mut stimuli)?;
            }
            Item::Instance { name, .. } => {
                return Err(ElabError::HierarchyPresent { inst: name.clone() })
            }
        }
    }

    let mut circuit = elab.circuit;
    circuit.procs = procs;
    stimuli.sort_by_key(|s| s.at);
    circuit.stimuli = stimuli;
    Ok(circuit)
}

/// Flattens `top` within `unit` and compiles the result.
///
/// # Errors
///
/// Propagates flattening and elaboration errors as strings.
pub fn compile_unit(unit: &hdl::SourceUnit, top: &str) -> Result<Circuit, String> {
    let flat = hdl::flatten(unit, top, "_").map_err(|e| e.to_string())?;
    compile(&flat.module).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl::parser::parse;

    #[test]
    fn compile_simple_module() {
        let unit = parse(
            r#"
            module m(input a, input b, output w, output reg q);
              assign w = a & b;
              always @(posedge a) q <= b;
              initial begin
                #5 q = 0;
              end
            endmodule
            "#,
        )
        .unwrap();
        let c = compile(unit.module("m").unwrap()).unwrap();
        assert_eq!(c.signal_count(), 4);
        assert_eq!(c.procs.len(), 2);
        assert_eq!(c.stimuli.len(), 1);
        assert_eq!(c.stimuli[0].at, 5);
        assert!(c.signals[c.signal("a").unwrap()].is_input);
        assert!(!c.signals[c.signal("w").unwrap()].is_input);
    }

    #[test]
    fn star_sensitivity_expands_to_reads() {
        let unit = parse(
            r#"
            module m(input a, input b, input c, output reg o);
              always @* o = a ? b : c;
            endmodule
            "#,
        )
        .unwrap();
        let c = compile(unit.module("m").unwrap()).unwrap();
        let Proc::Always { events, .. } = &c.procs[0] else {
            panic!()
        };
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn unsupported_constructs_error() {
        let unit = parse(
            r#"
            module f(input d, output reg b);
              always begin b = d; end
            endmodule
            "#,
        )
        .unwrap();
        assert!(matches!(
            compile(unit.module("f").unwrap()),
            Err(ElabError::FreeRunningAlways { .. })
        ));

        let unit2 = parse(
            r#"
            module g(input d, output reg b);
              always @(d) #3 b = d;
            endmodule
            "#,
        )
        .unwrap();
        assert!(matches!(
            compile(unit2.module("g").unwrap()),
            Err(ElabError::DelayOutsideInitial { .. })
        ));

        let unit3 = parse(
            r#"
            module h(input d, output w);
              assign w = ghost;
            endmodule
            "#,
        )
        .unwrap();
        assert!(matches!(
            compile(unit3.module("h").unwrap()),
            Err(ElabError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn based_literal_decoding() {
        assert_eq!(decode_based(4, "1010", 'b').unwrap().as_u64(), Some(10));
        assert_eq!(decode_based(8, "ff", 'h').unwrap().as_u64(), Some(255));
        assert_eq!(decode_based(8, "12", 'd').unwrap().as_u64(), Some(12));
        let x = decode_based(4, "1x10", 'b').unwrap();
        assert!(x.has_unknown());
        assert_eq!(x.to_string_msb(), "1x10");
        let hx = decode_based(8, "fx", 'h').unwrap();
        assert_eq!(hx.to_string_msb(), "1111xxxx");
        assert!(decode_based(4, "10", 'q').is_err());
        assert!(decode_based(4, "weird", 'd').is_err());
        // Truncation to width.
        assert_eq!(decode_based(2, "1111", 'b').unwrap().as_u64(), Some(3));
    }

    #[test]
    fn compile_unit_flattens_hierarchy() {
        let unit = parse(
            r#"
            module leaf(input i, output o);
              assign o = ~i;
            endmodule
            module top(input x, output y);
              wire m;
              leaf u1 (.i(x), .o(m));
              leaf u2 (.i(m), .o(y));
            endmodule
            "#,
        )
        .unwrap();
        let c = compile_unit(&unit, "top").unwrap();
        assert_eq!(c.procs.len(), 2);
    }
}
