//! Property-based tests for logic values and kernel invariants.

use proptest::prelude::*;
use sim::logic::{Logic, Std9, Value};

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop::sample::select(Logic::ALL.to_vec())
}

fn arb_value(max_width: usize) -> impl Strategy<Value = Value> {
    prop::collection::vec(arb_logic(), 1..=max_width).prop_map(|bits| {
        let s: String = bits.iter().rev().map(|b| b.to_char()).collect();
        Value::from_str_msb(&s).expect("valid chars")
    })
}

proptest! {
    #[test]
    fn numeric_round_trip(v in 0u64..=u64::MAX, width in 1usize..64) {
        let value = Value::from_u64(v, width);
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        prop_assert_eq!(value.as_u64(), Some(v & mask));
    }

    #[test]
    fn string_round_trip(value in arb_value(16)) {
        let s = value.to_string_msb();
        prop_assert_eq!(Value::from_str_msb(&s).expect("parses"), value);
    }

    #[test]
    fn bitwise_ops_match_u64_on_known_values(a in 0u64..1u64<<16, b in 0u64..1u64<<16) {
        let (va, vb) = (Value::from_u64(a, 16), Value::from_u64(b, 16));
        prop_assert_eq!(va.and(&vb).as_u64(), Some(a & b));
        prop_assert_eq!(va.or(&vb).as_u64(), Some(a | b));
        prop_assert_eq!(va.xor(&vb).as_u64(), Some(a ^ b));
        prop_assert_eq!(va.not().as_u64(), Some(!a & 0xffff));
    }

    #[test]
    fn gate_algebra_laws(a in arb_logic(), b in arb_logic()) {
        // Commutativity.
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.xor(b), b.xor(a));
        // De Morgan holds in the 4-value algebra (z as x).
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        // Double negation (modulo z-collapse).
        prop_assert_eq!(a.not().not(), a.not().not().not().not());
        // Domination.
        prop_assert_eq!(a.and(Logic::Zero), Logic::Zero);
        prop_assert_eq!(a.or(Logic::One), Logic::One);
    }

    #[test]
    fn logic_eq_is_reflexive_and_symmetric(a in arb_value(12), b in arb_value(12)) {
        // Reflexive up to unknowns: a value with x/z compares X to
        // itself, otherwise One.
        let self_eq = a.logic_eq(&a);
        if a.has_unknown() {
            prop_assert_eq!(self_eq, Logic::X);
        } else {
            prop_assert_eq!(self_eq, Logic::One);
        }
        prop_assert_eq!(a.logic_eq(&b), b.logic_eq(&a));
    }

    #[test]
    fn merge_is_idempotent_and_commutative(a in arb_value(12), b in arb_value(12)) {
        let w = a.width().max(b.width());
        prop_assert_eq!(a.merge(&a), a.resized(w.min(a.width())).resized(a.width()));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        // Merging never invents a known bit that the operands disagree on.
        let m = a.merge(&b);
        for i in 0..m.width() {
            let (ba, bb) = (a.resized(m.width()).get(i), b.resized(m.width()).get(i));
            if ba != bb {
                prop_assert_eq!(m.get(i), Logic::X);
            }
        }
    }

    #[test]
    fn std9_full_translation_refines_naive(l in arb_logic(), weak in any::<bool>()) {
        // Encoding then decoding with the full table is the identity on
        // logic levels; the naive table agrees except on weak levels.
        let encoded = Std9::from_logic(l, weak);
        prop_assert_eq!(encoded.to_logic_full(), l);
        let naive = encoded.to_logic_naive();
        if weak && matches!(l, Logic::Zero | Logic::One) {
            prop_assert_eq!(naive, Logic::X);
        } else {
            prop_assert_eq!(naive, l);
        }
    }
}

mod kernel_props {
    use super::*;
    use sim::elab::compile_unit;
    use sim::kernel::{Kernel, SchedulerPolicy};

    /// A combinational mux is policy-independent (no races by
    /// construction): property over random stimulus sequences.
    fn mux_kernel(policy: SchedulerPolicy) -> Kernel {
        let unit = hdl::parse(
            "module m(input s, input a, input b, output y, output n);
               assign y = s ? a : b;
               assign n = ~y;
             endmodule",
        )
        .expect("parses");
        Kernel::new(compile_unit(&unit, "m").expect("elab"), policy)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn combinational_logic_is_policy_independent(
            stimulus in prop::collection::vec((0usize..3, any::<bool>()), 1..24)
        ) {
            let run = |policy: SchedulerPolicy| -> (String, String) {
                let mut k = mux_kernel(policy);
                let mut t = 0u64;
                for (sig, level) in &stimulus {
                    t += 1;
                    let name = ["s", "a", "b"][*sig];
                    let v = Value::bit(if *level { Logic::One } else { Logic::Zero });
                    k.poke_name(name, v).expect("poke");
                    k.run_until(t).expect("run");
                }
                (
                    k.peek_name("y").expect("y").to_string_msb(),
                    k.peek_name("n").expect("n").to_string_msb(),
                )
            };
            let results: Vec<_> = SchedulerPolicy::all().into_iter().map(run).collect();
            for w in results.windows(2) {
                prop_assert_eq!(&w[0], &w[1]);
            }
            // And the inverter output is consistent with y.
            let (y, n) = &results[0];
            if y == "1" { prop_assert_eq!(n.as_str(), "0"); }
            if y == "0" { prop_assert_eq!(n.as_str(), "1"); }
        }
    }
}
