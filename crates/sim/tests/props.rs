//! Property-based tests for logic values and kernel invariants.

use proptest::prelude::*;
use sim::logic::{Logic, Std9, Value};

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop::sample::select(Logic::ALL.to_vec())
}

fn arb_value(max_width: usize) -> impl Strategy<Value = Value> {
    prop::collection::vec(arb_logic(), 1..=max_width).prop_map(|bits| {
        let s: String = bits.iter().rev().map(|b| b.to_char()).collect();
        Value::from_str_msb(&s).expect("valid chars")
    })
}

proptest! {
    #[test]
    fn numeric_round_trip(v in 0u64..=u64::MAX, width in 1usize..64) {
        let value = Value::from_u64(v, width);
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        prop_assert_eq!(value.as_u64(), Some(v & mask));
    }

    #[test]
    fn string_round_trip(value in arb_value(16)) {
        let s = value.to_string_msb();
        prop_assert_eq!(Value::from_str_msb(&s).expect("parses"), value);
    }

    #[test]
    fn bitwise_ops_match_u64_on_known_values(a in 0u64..1u64<<16, b in 0u64..1u64<<16) {
        let (va, vb) = (Value::from_u64(a, 16), Value::from_u64(b, 16));
        prop_assert_eq!(va.and(&vb).as_u64(), Some(a & b));
        prop_assert_eq!(va.or(&vb).as_u64(), Some(a | b));
        prop_assert_eq!(va.xor(&vb).as_u64(), Some(a ^ b));
        prop_assert_eq!(va.not().as_u64(), Some(!a & 0xffff));
    }

    #[test]
    fn gate_algebra_laws(a in arb_logic(), b in arb_logic()) {
        // Commutativity.
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.xor(b), b.xor(a));
        // De Morgan holds in the 4-value algebra (z as x).
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        // Double negation (modulo z-collapse).
        prop_assert_eq!(a.not().not(), a.not().not().not().not());
        // Domination.
        prop_assert_eq!(a.and(Logic::Zero), Logic::Zero);
        prop_assert_eq!(a.or(Logic::One), Logic::One);
    }

    #[test]
    fn logic_eq_is_reflexive_and_symmetric(a in arb_value(12), b in arb_value(12)) {
        // Reflexive up to unknowns: a value with x/z compares X to
        // itself, otherwise One.
        let self_eq = a.logic_eq(&a);
        if a.has_unknown() {
            prop_assert_eq!(self_eq, Logic::X);
        } else {
            prop_assert_eq!(self_eq, Logic::One);
        }
        prop_assert_eq!(a.logic_eq(&b), b.logic_eq(&a));
    }

    #[test]
    fn merge_is_idempotent_and_commutative(a in arb_value(12), b in arb_value(12)) {
        let w = a.width().max(b.width());
        prop_assert_eq!(a.merge(&a), a.resized(w.min(a.width())).resized(a.width()));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        // Merging never invents a known bit that the operands disagree on.
        let m = a.merge(&b);
        for i in 0..m.width() {
            let (ba, bb) = (a.resized(m.width()).get(i), b.resized(m.width()).get(i));
            if ba != bb {
                prop_assert_eq!(m.get(i), Logic::X);
            }
        }
    }

    #[test]
    fn std9_full_translation_refines_naive(l in arb_logic(), weak in any::<bool>()) {
        // Encoding then decoding with the full table is the identity on
        // logic levels; the naive table agrees except on weak levels.
        let encoded = Std9::from_logic(l, weak);
        prop_assert_eq!(encoded.to_logic_full(), l);
        let naive = encoded.to_logic_naive();
        if weak && matches!(l, Logic::Zero | Logic::One) {
            prop_assert_eq!(naive, Logic::X);
        } else {
            prop_assert_eq!(naive, l);
        }
    }
}

/// Differential tests: every packed plane-arithmetic op must agree
/// with the retained per-bit reference path, across the width spectrum
/// the packed representation cares about — 1 (degenerate), 63/64 (word
/// boundary from below), 65 (first spill to the wide repr), 128 (exact
/// two words).
mod packed_vs_reference {
    use super::*;
    use sim::logic::reference;

    const WIDTHS: &[usize] = &[1, 63, 64, 65, 128];

    fn arb_value_spectrum() -> impl Strategy<Value = Value> {
        prop::sample::select(WIDTHS.to_vec()).prop_flat_map(|w| {
            prop::collection::vec(arb_logic(), w..=w).prop_map(|bits| Value::from_bits(&bits))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn binary_ops_match_per_bit_reference(
            a in arb_value_spectrum(),
            b in arb_value_spectrum(),
        ) {
            let packed = (
                a.and(&b), a.or(&b), a.xor(&b), a.merge(&b), a.logic_eq(&b),
            );
            let reference = {
                let _guard = reference::force();
                (a.and(&b), a.or(&b), a.xor(&b), a.merge(&b), a.logic_eq(&b))
            };
            prop_assert_eq!(&packed.0, &reference.0, "and: {} {}", a, b);
            prop_assert_eq!(&packed.1, &reference.1, "or: {} {}", a, b);
            prop_assert_eq!(&packed.2, &reference.2, "xor: {} {}", a, b);
            prop_assert_eq!(&packed.3, &reference.3, "merge: {} {}", a, b);
            prop_assert_eq!(packed.4, reference.4, "logic_eq: {} {}", a, b);
        }

        #[test]
        fn unary_ops_match_per_bit_reference(a in arb_value_spectrum()) {
            let packed = (a.not(), a.reduce_and(), a.reduce_or());
            let reference = {
                let _guard = reference::force();
                (a.not(), a.reduce_and(), a.reduce_or())
            };
            prop_assert_eq!(&packed.0, &reference.0, "not: {}", a);
            prop_assert_eq!(packed.1, reference.1, "reduce_and: {}", a);
            prop_assert_eq!(packed.2, reference.2, "reduce_or: {}", a);
        }

        #[test]
        fn packed_bit_access_round_trips(a in arb_value_spectrum()) {
            // from_bits(to_bits) is the identity, and string rendering
            // (the old representation's native form) agrees bit by bit.
            let bits = a.to_bits();
            prop_assert_eq!(&Value::from_bits(&bits), &a);
            prop_assert_eq!(
                Value::from_str_msb(&a.to_string_msb()).expect("parses"),
                a.clone()
            );
            // Resize through the width spectrum and back never corrupts
            // surviving bits.
            for &w in WIDTHS {
                let r = a.resized(w);
                for i in 0..w.min(a.width()) {
                    prop_assert_eq!(r.get(i), a.get(i), "width {} bit {}", w, i);
                }
            }
        }

        #[test]
        fn concat_matches_per_bit_construction(
            parts in prop::collection::vec(arb_value_spectrum(), 1..4)
        ) {
            let refs: Vec<&Value> = parts.iter().collect();
            let packed = Value::concat_msb(&refs);
            // Reference: gather LSB-first bits of the last operand
            // first, as Verilog {a, b} places b in the low bits.
            let mut bits: Vec<Logic> = Vec::new();
            for p in parts.iter().rev() {
                bits.extend(p.to_bits());
            }
            prop_assert_eq!(packed, Value::from_bits(&bits));
        }
    }
}

mod kernel_props {
    use super::*;
    use sim::elab::compile_unit;
    use sim::kernel::{Kernel, SchedulerPolicy};

    /// A combinational mux is policy-independent (no races by
    /// construction): property over random stimulus sequences.
    fn mux_kernel(policy: SchedulerPolicy) -> Kernel {
        let unit = hdl::parse(
            "module m(input s, input a, input b, output y, output n);
               assign y = s ? a : b;
               assign n = ~y;
             endmodule",
        )
        .expect("parses");
        Kernel::new(compile_unit(&unit, "m").expect("elab"), policy)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn combinational_logic_is_policy_independent(
            stimulus in prop::collection::vec((0usize..3, any::<bool>()), 1..24)
        ) {
            let run = |policy: SchedulerPolicy| -> (String, String) {
                let mut k = mux_kernel(policy);
                let mut t = 0u64;
                for (sig, level) in &stimulus {
                    t += 1;
                    let name = ["s", "a", "b"][*sig];
                    let v = Value::bit(if *level { Logic::One } else { Logic::Zero });
                    k.poke_name(name, v).expect("poke");
                    k.run_until(t).expect("run");
                }
                (
                    k.peek_name("y").expect("y").to_string_msb(),
                    k.peek_name("n").expect("n").to_string_msb(),
                )
            };
            let results: Vec<_> = SchedulerPolicy::all().into_iter().map(run).collect();
            for w in results.windows(2) {
                prop_assert_eq!(&w[0], &w[1]);
            }
            // And the inverter output is consistent with y.
            let (y, n) = &results[0];
            if y == "1" { prop_assert_eq!(n.as_str(), "0"); }
            if y == "0" { prop_assert_eq!(n.as_str(), "1"); }
        }
    }
}

/// The tentpole's correctness pin: on randomized circuits, the packed
/// kernel's waveform must be byte-identical (as VCD text) to the same
/// run routed through the per-bit reference path — under every policy.
mod waveform_identity {
    use super::*;
    use sim::elab::compile_unit;
    use sim::kernel::{Kernel, SchedulerPolicy};
    use sim::logic::reference;
    use sim::race::clocked_testbench;

    /// Renders a random combinational network as Verilog: `gates[i]`
    /// defines wire `wi` as a unary/binary op over earlier signals,
    /// then a 70-bit concat bus with wide ops exercises the spilled
    /// representation, and a clocked register closes the loop.
    fn random_src(gates: &[(u8, u8, u8)]) -> String {
        let mut pool = vec!["d".to_string()];
        let mut body = String::new();
        let mut decls = String::new();
        for (i, (op, a, b)) in gates.iter().enumerate() {
            let name = format!("w{i}");
            let lhs = &pool[*a as usize % pool.len()];
            let rhs = &pool[*b as usize % pool.len()];
            decls.push_str(&format!("  wire {name};\n"));
            body.push_str(&match op % 4 {
                0 => format!("  assign {name} = {lhs} & {rhs};\n"),
                1 => format!("  assign {name} = {lhs} | {rhs};\n"),
                2 => format!("  assign {name} = {lhs} ^ {rhs};\n"),
                _ => format!("  assign {name} = ~{lhs};\n"),
            });
            pool.push(name);
        }
        // A 70-term concat pushes past one word so wide-plane ops run.
        let terms: Vec<String> = (0..70).map(|i| pool[i % pool.len()].clone()).collect();
        decls.push_str("  wire [69:0] bus;\n  wire [69:0] busn;\n  wire [69:0] busm;\n");
        body.push_str(&format!("  assign bus = {{{}}};\n", terms.join(", ")));
        body.push_str("  assign busn = ~bus;\n");
        body.push_str("  assign busm = bus ^ busn;\n");
        let last = pool.last().unwrap();
        format!(
            "module r(input clk, input d, output reg q);\n{decls}{body}\
             \x20 initial q = 0;\n\
             \x20 always @(posedge clk) q <= {last};\n\
             endmodule\n"
        )
    }

    fn run_vcd(src: &str, policy: SchedulerPolicy) -> String {
        let unit = hdl::parse(src).expect("random source parses");
        let mut k = Kernel::new(compile_unit(&unit, "r").expect("elab"), policy);
        clocked_testbench(&mut k, 3).expect("run");
        sim::vcd::from_kernel(&k)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn packed_waveforms_are_byte_identical_to_reference(
            gates in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..8)
        ) {
            let src = random_src(&gates);
            for policy in SchedulerPolicy::all() {
                let packed = run_vcd(&src, policy);
                let referenced = {
                    let _guard = reference::force();
                    run_vcd(&src, policy)
                };
                prop_assert_eq!(&packed, &referenced, "policy {}", policy.name);
            }
        }
    }
}

/// Sweep determinism: the parallel grid must equal the sequential one
/// for any stimulus set and thread count.
mod sweep_props {
    use super::*;
    use sim::elab::compile_unit;
    use sim::race::{models, sweep, sweep_parallel, Stim};
    use sim::SchedulerPolicy;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn parallel_sweep_is_deterministic(
            cycle_counts in prop::collection::vec(1u64..6, 1..6),
            threads in 1usize..9,
        ) {
            let unit = hdl::parse(models::ORDER_RACE).expect("parses");
            let circuit = Arc::new(compile_unit(&unit, "order").expect("elab"));
            let stims: Vec<Stim> = cycle_counts
                .iter()
                .enumerate()
                .map(|(i, &c)| Stim::clocked(format!("s{i}x{c}"), c))
                .collect();
            let policies = SchedulerPolicy::all();
            let sequential = sweep(&circuit, &policies, &stims).expect("sweep");
            let parallel =
                sweep_parallel(&circuit, &policies, &stims, threads).expect("sweep");
            prop_assert_eq!(parallel, sequential);
        }
    }
}
