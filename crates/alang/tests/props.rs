//! Property-based tests for the a/L interpreter.

use alang::host::{MapHost, NoHost};
use alang::value::Value;
use alang::Interpreter;
use proptest::prelude::*;

fn run(src: &str) -> Result<Value, alang::AlangError> {
    Interpreter::new().eval_src(src, &mut NoHost)
}

proptest! {
    #[test]
    fn integer_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let sum = run(&format!("(+ {a} {b})")).expect("eval");
        prop_assert!(sum.equals(&Value::Int(a + b)));
        let diff = run(&format!("(- {a} {b})")).expect("eval");
        prop_assert!(diff.equals(&Value::Int(a - b)));
        let prod = run(&format!("(* {a} {b})")).expect("eval");
        prop_assert!(prod.equals(&Value::Int(a.wrapping_mul(b))));
        if b != 0 {
            let m = run(&format!("(mod {a} {b})")).expect("eval");
            prop_assert!(m.equals(&Value::Int(a.rem_euclid(b))));
        }
    }

    #[test]
    fn comparisons_match_rust(a in -1000i64..1000, b in -1000i64..1000) {
        for (op, expect) in [
            ("<", a < b),
            (">", a > b),
            ("<=", a <= b),
            (">=", a >= b),
            ("=", a == b),
        ] {
            let v = run(&format!("({op} {a} {b})")).expect("eval");
            prop_assert!(v.equals(&Value::Bool(expect)), "{op} {a} {b}");
        }
    }

    #[test]
    fn reader_round_trips_integer_lists(items in prop::collection::vec(-100i64..100, 0..12)) {
        let src = format!(
            "'({})",
            items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ")
        );
        let v = run(&src).expect("eval");
        let expect = Value::List(items.into_iter().map(Value::Int).collect());
        prop_assert!(v.equals(&expect));
    }

    #[test]
    fn list_ops_are_consistent(items in prop::collection::vec(-100i64..100, 1..12)) {
        let list = format!(
            "'({})",
            items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ")
        );
        let len = run(&format!("(length {list})")).expect("eval");
        prop_assert!(len.equals(&Value::Int(items.len() as i64)));
        let car = run(&format!("(car {list})")).expect("eval");
        prop_assert!(car.equals(&Value::Int(items[0])));
        // (reverse (reverse x)) == x
        let rr = run(&format!("(reverse (reverse {list}))")).expect("eval");
        let expect = Value::List(items.iter().map(|&i| Value::Int(i)).collect());
        prop_assert!(rr.equals(&expect));
        // cons . car/cdr round trip.
        let rebuilt = run(&format!("(cons (car {list}) (cdr {list}))")).expect("eval");
        prop_assert!(rebuilt.equals(&expect));
    }

    #[test]
    fn string_split_and_append_invert(parts in prop::collection::vec("[a-z]{1,6}", 1..6)) {
        let joined = parts.join(",");
        let v = run(&format!("(string-split \"{joined}\" \",\")")).expect("eval");
        let expect = Value::List(parts.iter().map(|p| Value::Str(p.clone())).collect());
        prop_assert!(v.equals(&expect));
        // substring recovers a prefix.
        let first = &parts[0];
        let sub = run(&format!(
            "(substring \"{joined}\" 0 {})",
            first.chars().count()
        ))
        .expect("eval");
        prop_assert!(sub.equals(&Value::Str(first.clone())));
    }

    #[test]
    fn prop_set_get_round_trips_through_host(key in "[A-Z]{1,8}", val in -1000i64..1000) {
        let mut interp = Interpreter::new();
        let mut host = MapHost::new();
        interp
            .eval_src(&format!("(prop-set! \"{key}\" {val})"), &mut host)
            .expect("set");
        let got = interp
            .eval_src(&format!("(prop-get \"{key}\")"), &mut host)
            .expect("get");
        prop_assert!(got.equals(&Value::Int(val)));
        let removed = interp
            .eval_src(&format!("(prop-remove! \"{key}\")"), &mut host)
            .expect("remove");
        prop_assert!(removed.equals(&Value::Int(val)));
        prop_assert!(host.props.is_empty());
    }

    #[test]
    fn user_functions_compute(n in 0i64..18) {
        // Factorial via recursion agrees with an iterative Rust fold.
        let mut interp = Interpreter::new();
        interp
            .eval_src(
                "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))",
                &mut NoHost,
            )
            .expect("define");
        let v = interp
            .call("fact", &[Value::Int(n)], &mut NoHost)
            .expect("call");
        let expect: i64 = (1..=n.max(1)).product();
        prop_assert!(v.equals(&Value::Int(expect)));
    }
}

mod fuzz_safety {
    use super::*;
    use alang::host::NoHost;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Reader and evaluator never panic on arbitrary input; the
        /// fuel guard bounds evaluation.
        #[test]
        fn interpreter_is_panic_free(src in ".{0,160}") {
            let mut interp = Interpreter::new();
            interp.fuel = 20_000;
            let _ = interp.eval_src(&src, &mut NoHost);
        }

        #[test]
        fn interpreter_survives_paren_soup(
            toks in prop::collection::vec(
                prop::sample::select(vec![
                    "(", ")", "+", "define", "lambda", "if", "let", "x", "1",
                    "\"s\"", "'", "car", "list", "while", "#t",
                ]),
                0..30,
            )
        ) {
            let src: String = toks.join(" ");
            let mut interp = Interpreter::new();
            interp.fuel = 20_000;
            let _ = interp.eval_src(&src, &mut NoHost);
        }
    }
}
