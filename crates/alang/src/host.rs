//! The host interface: how a/L scripts reach into the design hierarchy.
//!
//! The paper: "Concurrent CAE Solution's a/L is a Lisp dialect and is set
//! up so that a user can interact with the entire design hierarchy during
//! the migration process." The [`Host`] trait is that hook — the
//! migration engine implements it over the object currently being
//! translated, and scripts use the `prop-*` and `ctx` builtins to read
//! and rewrite properties.

use std::collections::BTreeMap;

use crate::value::Value;

/// Design-side state exposed to a running script.
pub trait Host {
    /// Reads a property value.
    fn get(&self, key: &str) -> Option<Value>;

    /// Writes a property value.
    ///
    /// # Errors
    ///
    /// Implementations may reject writes (e.g. read-only hosts) with a
    /// message.
    fn set(&mut self, key: &str, value: Value) -> Result<(), String>;

    /// Removes a property, returning its old value.
    fn remove(&mut self, key: &str) -> Option<Value>;

    /// All property names, sorted.
    fn keys(&self) -> Vec<String>;

    /// Contextual metadata (e.g. `"inst"`, `"cell"`, `"library"`,
    /// `"path"`).
    fn context(&self, what: &str) -> Option<Value>;
}

/// A simple map-backed host, useful for tests and standalone scripting.
#[derive(Debug, Clone, Default)]
pub struct MapHost {
    /// Property map.
    pub props: BTreeMap<String, Value>,
    /// Context map.
    pub ctx: BTreeMap<String, Value>,
}

impl MapHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        MapHost::default()
    }

    /// Inserts a property, builder style.
    pub fn with_prop(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.props.insert(key.into(), value.into());
        self
    }

    /// Inserts a context entry, builder style.
    pub fn with_context(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.ctx.insert(key.into(), value.into());
        self
    }
}

impl Host for MapHost {
    fn get(&self, key: &str) -> Option<Value> {
        self.props.get(key).cloned()
    }

    fn set(&mut self, key: &str, value: Value) -> Result<(), String> {
        self.props.insert(key.to_string(), value);
        Ok(())
    }

    fn remove(&mut self, key: &str) -> Option<Value> {
        self.props.remove(key)
    }

    fn keys(&self) -> Vec<String> {
        self.props.keys().cloned().collect()
    }

    fn context(&self, what: &str) -> Option<Value> {
        self.ctx.get(what).cloned()
    }
}

/// A host with no design attached: every `prop-*` access fails softly
/// (`get` returns `None`, `set` errors). Used when evaluating pure
/// scripts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHost;

impl Host for NoHost {
    fn get(&self, _key: &str) -> Option<Value> {
        None
    }

    fn set(&mut self, key: &str, _value: Value) -> Result<(), String> {
        Err(format!("no design attached; cannot set `{key}`"))
    }

    fn remove(&mut self, _key: &str) -> Option<Value> {
        None
    }

    fn keys(&self) -> Vec<String> {
        Vec::new()
    }

    fn context(&self, _what: &str) -> Option<Value> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_host_round_trip() {
        let mut h = MapHost::new()
            .with_prop("W", 4i64)
            .with_context("inst", "I1");
        assert_eq!(h.get("W").unwrap().as_int(), Some(4));
        h.set("L", Value::Int(2)).unwrap();
        assert_eq!(h.keys(), vec!["L".to_string(), "W".to_string()]);
        assert_eq!(h.remove("W").unwrap().as_int(), Some(4));
        assert_eq!(h.context("inst").unwrap().as_str(), Some("I1"));
        assert!(h.context("nope").is_none());
    }

    #[test]
    fn no_host_rejects_writes() {
        let mut h = NoHost;
        assert!(h.get("x").is_none());
        assert!(h.set("x", Value::Int(1)).is_err());
        assert!(h.keys().is_empty());
    }
}
