//! # alang — the a/L migration-callback language
//!
//! A small Lisp dialect reproducing the "Access Language (a/L)" the
//! paper's Section 2 describes: an interpreted language whose callbacks
//! handle non-standard property mapping during schematic migration,
//! "set up so that a user can interact with the entire design hierarchy
//! during the migration process."
//!
//! The design side is abstracted behind the [`host::Host`] trait; the
//! migration engine implements it over whatever object is currently
//! being translated, and scripts call `prop-get` / `prop-set!` /
//! `prop-remove!` / `prop-names` / `ctx` to rewrite properties.
//!
//! ## Example
//!
//! ```
//! use alang::{Interpreter, host::MapHost};
//!
//! # fn main() -> Result<(), alang::AlangError> {
//! let mut interp = Interpreter::new();
//! let mut host = MapHost::new().with_prop("SPICE", "w=1.2u l=0.4u");
//! // Split the compound analog property into two Cascade-style props.
//! interp.eval_src(
//!     r#"
//!     (define (split-spice)
//!       (let ((parts (string-split (prop-get "SPICE") " ")))
//!         (prop-set! "W" (substring (nth 0 parts) 2 (length (nth 0 parts))))
//!         (prop-set! "L" (substring (nth 1 parts) 2 (length (nth 1 parts))))
//!         (prop-remove! "SPICE")))
//!     (split-spice)
//!     "#,
//!     &mut host,
//! )?;
//! assert_eq!(host.props["W"].as_str(), Some("1.2u"));
//! assert_eq!(host.props["L"].as_str(), Some("0.4u"));
//! assert!(!host.props.contains_key("SPICE"));
//! # Ok(())
//! # }
//! ```

pub mod builtins;
pub mod env;
pub mod eval;
pub mod host;
pub mod reader;
pub mod value;

use std::fmt;

use env::Env;
use eval::Ctx;
use host::Host;
use value::Value;

/// Any a/L failure: read errors, unbound symbols, type/arity errors,
/// or fuel exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlangError {
    message: String,
}

impl AlangError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        AlangError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AlangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a/L: {}", self.message)
    }
}

impl std::error::Error for AlangError {}

/// Default per-evaluation step budget.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// An a/L interpreter holding a persistent global environment.
///
/// Definitions survive across [`Interpreter::eval_src`] calls, so a
/// migration configuration can load a callback library once and invoke
/// entry points per design object via [`Interpreter::call`].
pub struct Interpreter {
    root: Env,
    /// Lines produced by `(print ...)` across all evaluations.
    pub output: Vec<String>,
    /// Step budget applied to each top-level evaluation.
    pub fuel: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with all builtins installed.
    pub fn new() -> Self {
        let root = Env::new();
        builtins::install(&root);
        Interpreter {
            root,
            output: Vec::new(),
            fuel: DEFAULT_FUEL,
        }
    }

    /// The global environment (for advanced host embedding).
    pub fn globals(&self) -> &Env {
        &self.root
    }

    /// Evaluates every form in `src` against `host`, returning the last
    /// result.
    ///
    /// # Errors
    ///
    /// Returns the first read or evaluation error.
    pub fn eval_src(&mut self, src: &str, host: &mut dyn Host) -> Result<Value, AlangError> {
        let forms = reader::read_all(src)?;
        let mut result = Value::Nil;
        let mut ctx = Ctx {
            host,
            output: &mut self.output,
            fuel: self.fuel,
        };
        for form in &forms {
            result = eval::eval(form, &self.root, &mut ctx)?;
        }
        Ok(result)
    }

    /// Evaluates a single already-read form.
    ///
    /// # Errors
    ///
    /// Returns any evaluation error.
    pub fn eval_form(&mut self, form: &Value, host: &mut dyn Host) -> Result<Value, AlangError> {
        let mut ctx = Ctx {
            host,
            output: &mut self.output,
            fuel: self.fuel,
        };
        eval::eval(form, &self.root, &mut ctx)
    }

    /// Calls a globally-defined function by name.
    ///
    /// # Errors
    ///
    /// Fails when `name` is unbound, not callable, or the body fails.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn Host,
    ) -> Result<Value, AlangError> {
        let func = self
            .root
            .lookup(name)
            .ok_or_else(|| AlangError::new(format!("unbound function `{name}`")))?;
        let mut ctx = Ctx {
            host,
            output: &mut self.output,
            fuel: self.fuel,
        };
        eval::apply(&func, args, &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use host::{MapHost, NoHost};

    fn run(src: &str) -> Result<Value, AlangError> {
        Interpreter::new().eval_src(src, &mut NoHost)
    }

    #[test]
    fn arithmetic() {
        assert!(run("(+ 1 2 3)").unwrap().equals(&Value::Int(6)));
        assert!(run("(- 10 4)").unwrap().equals(&Value::Int(6)));
        assert!(run("(- 5)").unwrap().equals(&Value::Int(-5)));
        assert!(run("(* 2 3 4)").unwrap().equals(&Value::Int(24)));
        assert!(run("(/ 10 2)").unwrap().equals(&Value::Int(5)));
        assert!(run("(/ 7 2)").unwrap().equals(&Value::Real(3.5)));
        assert!(run("(mod 7 3)").unwrap().equals(&Value::Int(1)));
        assert!(run("(mod -1 3)").unwrap().equals(&Value::Int(2)));
        assert!(run("(/ 1 0)").is_err());
        assert!(run("(+ 1 \"x\")").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert!(run("(< 1 2)").unwrap().is_truthy());
        assert!(!run("(> 1 2)").unwrap().is_truthy());
        assert!(run("(= 2 2.0)").unwrap().is_truthy());
        assert!(run("(and #t 1 \"s\")").unwrap().is_truthy());
        assert!(!run("(and #t #f)").unwrap().is_truthy());
        assert!(run("(or #f nil 3)").unwrap().equals(&Value::Int(3)));
        assert!(run("(not nil)").unwrap().is_truthy());
    }

    #[test]
    fn special_forms() {
        assert!(run("(if (> 2 1) 'yes 'no)")
            .unwrap()
            .equals(&Value::Sym("yes".into())));
        assert!(run("(if #f 1)").unwrap().equals(&Value::Nil));
        assert!(run("(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))")
            .unwrap()
            .equals(&Value::Sym("b".into())));
        assert!(run("(cond ((= 1 2) 'a) (else 'c))")
            .unwrap()
            .equals(&Value::Sym("c".into())));
        assert!(run("(begin 1 2 3)").unwrap().equals(&Value::Int(3)));
        assert!(run("(let ((x 2) (y 3)) (* x y))")
            .unwrap()
            .equals(&Value::Int(6)));
    }

    #[test]
    fn define_and_call_functions() {
        let v = run("(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1))))) (fact 6)").unwrap();
        assert!(v.equals(&Value::Int(720)));
        let v = run("(define x 5) (set! x (+ x 1)) x").unwrap();
        assert!(v.equals(&Value::Int(6)));
        assert!(run("(set! nope 1)").is_err());
    }

    #[test]
    fn lambdas_capture_lexically() {
        let v = run("(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)").unwrap();
        assert!(v.equals(&Value::Int(15)));
    }

    #[test]
    fn while_loops_with_fuel_guard() {
        let v = run("(define i 0) (while (< i 10) (set! i (+ i 1))) i").unwrap();
        assert!(v.equals(&Value::Int(10)));
        // Infinite loop hits the fuel limit instead of hanging.
        let mut interp = Interpreter::new();
        interp.fuel = 10_000;
        let err = interp.eval_src("(while #t 1)", &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn list_operations() {
        assert!(run("(car '(1 2 3))").unwrap().equals(&Value::Int(1)));
        assert_eq!(run("(cdr '(1 2 3))").unwrap().to_string(), "(2 3)");
        assert_eq!(run("(cons 0 '(1))").unwrap().to_string(), "(0 1)");
        assert!(run("(length '(a b c))").unwrap().equals(&Value::Int(3)));
        assert!(run("(nth 1 '(a b c))")
            .unwrap()
            .equals(&Value::Sym("b".into())));
        assert_eq!(run("(append '(1) '(2 3))").unwrap().to_string(), "(1 2 3)");
        assert_eq!(run("(reverse '(1 2))").unwrap().to_string(), "(2 1)");
        assert_eq!(
            run("(map (lambda (x) (* x x)) '(1 2 3))")
                .unwrap()
                .to_string(),
            "(1 4 9)"
        );
        assert_eq!(
            run("(filter (lambda (x) (> x 1)) '(0 1 2 3))")
                .unwrap()
                .to_string(),
            "(2 3)"
        );
        assert!(run("(car '())").is_err());
    }

    #[test]
    fn string_operations() {
        assert!(run("(string-append \"a\" \"b\" 3)")
            .unwrap()
            .equals(&Value::Str("ab3".into())));
        assert!(run("(substring \"hello\" 1 3)")
            .unwrap()
            .equals(&Value::Str("el".into())));
        assert!(run("(string-index \"hello\" \"ll\")")
            .unwrap()
            .equals(&Value::Int(2)));
        assert!(run("(string-index \"hello\" \"z\")")
            .unwrap()
            .equals(&Value::Int(-1)));
        assert_eq!(
            run("(string-split \"a,b,c\" \",\")").unwrap().to_string(),
            "(\"a\" \"b\" \"c\")"
        );
        assert!(run("(string-replace \"a-b\" \"-\" \"_\")")
            .unwrap()
            .equals(&Value::Str("a_b".into())));
        assert!(run("(string->number \"42\")")
            .unwrap()
            .equals(&Value::Int(42)));
        assert!(run("(string->number \"x\")").unwrap().equals(&Value::Nil));
        assert!(run("(string-upcase \"ab\")")
            .unwrap()
            .equals(&Value::Str("AB".into())));
        assert!(run("(substring \"ab\" 1 9)").is_err());
    }

    #[test]
    fn predicates() {
        assert!(run("(null? '())").unwrap().is_truthy());
        assert!(run("(null? nil)").unwrap().is_truthy());
        assert!(!run("(null? '(1))").unwrap().is_truthy());
        assert!(run("(list? '(1))").unwrap().is_truthy());
        assert!(run("(string? \"s\")").unwrap().is_truthy());
        assert!(run("(number? 2.5)").unwrap().is_truthy());
    }

    #[test]
    fn print_collects_output() {
        let mut interp = Interpreter::new();
        interp
            .eval_src("(print \"hello\" 42)", &mut NoHost)
            .unwrap();
        assert_eq!(interp.output, vec!["hello 42"]);
    }

    #[test]
    fn host_property_access() {
        let mut interp = Interpreter::new();
        let mut host = MapHost::new()
            .with_prop("NAME", "old")
            .with_context("inst", "I7");
        interp
            .eval_src(
                r#"(prop-set! "NAME" (string-append (prop-get "NAME") "_" (ctx "inst")))"#,
                &mut host,
            )
            .unwrap();
        assert_eq!(host.props["NAME"].as_str(), Some("old_I7"));
        let names = interp.eval_src("(prop-names)", &mut host).unwrap();
        assert_eq!(names.to_string(), "(\"NAME\")");
    }

    #[test]
    fn definitions_persist_across_eval_calls() {
        let mut interp = Interpreter::new();
        interp
            .eval_src("(define (double x) (* 2 x))", &mut NoHost)
            .unwrap();
        let v = interp
            .call("double", &[Value::Int(21)], &mut NoHost)
            .unwrap();
        assert!(v.equals(&Value::Int(42)));
        assert!(interp.call("missing", &[], &mut NoHost).is_err());
        assert!(interp
            .call("double", &[Value::Int(1), Value::Int(2)], &mut NoHost)
            .is_err());
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(run("unbound-name").is_err());
        assert!(run("(1 2 3)").is_err()); // not callable
        assert!(run("(quote)").is_err());
        assert!(run("(lambda)").is_err());
        assert!(run("(let (bad) 1)").is_err());
    }
}

#[cfg(test)]
mod more_builtin_tests {
    use super::*;
    use host::NoHost;

    fn run(src: &str) -> Result<Value, AlangError> {
        Interpreter::new().eval_src(src, &mut NoHost)
    }

    #[test]
    fn min_max_abs() {
        assert!(run("(min 3 1 2)").unwrap().equals(&Value::Int(1)));
        assert!(run("(max 3 1 2)").unwrap().equals(&Value::Int(3)));
        assert!(run("(min 1.5 2)").unwrap().equals(&Value::Real(1.5)));
        assert!(run("(abs -7)").unwrap().equals(&Value::Int(7)));
        assert!(run("(abs -2.5)").unwrap().equals(&Value::Real(2.5)));
        assert!(run("(min)").is_err());
        assert!(run("(abs \"x\")").is_err());
    }

    #[test]
    fn assoc_finds_pairs() {
        let v = run("(assoc 'b '((a 1) (b 2) (c 3)))").unwrap();
        assert_eq!(v.to_string(), "(b 2)");
        assert!(run("(assoc 'z '((a 1)))").unwrap().equals(&Value::Nil));
        assert!(run("(assoc 'z 5)").is_err());
    }
}
