//! The a/L reader: source text to [`Value`] forms.

use crate::value::Value;
use crate::AlangError;

struct Reader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: impl Into<String>) -> AlangError {
        AlangError::new(format!("line {}: {}", self.line, msg.into()))
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.chars.peek() {
            if c == ';' {
                for ch in self.chars.by_ref() {
                    if ch == '\n' {
                        self.line += 1;
                        break;
                    }
                }
            } else if c.is_whitespace() {
                if c == '\n' {
                    self.line += 1;
                }
                self.chars.next();
            } else {
                break;
            }
        }
    }

    fn read_form(&mut self) -> Result<Option<Value>, AlangError> {
        self.skip_ws();
        let Some(&c) = self.chars.peek() else {
            return Ok(None);
        };
        match c {
            '(' => {
                self.chars.next();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.chars.peek() {
                        Some(')') => {
                            self.chars.next();
                            return Ok(Some(Value::List(items)));
                        }
                        Some(_) => match self.read_form()? {
                            Some(v) => items.push(v),
                            None => return Err(self.err("unterminated list")),
                        },
                        None => return Err(self.err("unterminated list")),
                    }
                }
            }
            ')' => Err(self.err("unexpected `)`")),
            '\'' => {
                self.chars.next();
                match self.read_form()? {
                    Some(v) => Ok(Some(Value::List(vec![Value::Sym("quote".into()), v]))),
                    None => Err(self.err("nothing to quote")),
                }
            }
            '"' => {
                self.chars.next();
                let mut s = String::new();
                loop {
                    match self.chars.next() {
                        Some('\\') => match self.chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(ch) => s.push(ch),
                            None => return Err(self.err("unterminated string")),
                        },
                        Some('"') => break,
                        Some(ch) => {
                            if ch == '\n' {
                                self.line += 1;
                            }
                            s.push(ch);
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Ok(Some(Value::Str(s)))
            }
            _ => {
                let mut tok = String::new();
                while let Some(&ch) = self.chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == '"' || ch == ';' {
                        break;
                    }
                    tok.push(ch);
                    self.chars.next();
                }
                Ok(Some(Self::atom(tok)))
            }
        }
    }

    fn atom(tok: String) -> Value {
        match tok.as_str() {
            "#t" => return Value::Bool(true),
            "#f" => return Value::Bool(false),
            "nil" => return Value::Nil,
            _ => {}
        }
        if let Ok(i) = tok.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(r) = tok.parse::<f64>() {
            return Value::Real(r);
        }
        Value::Sym(tok)
    }
}

/// Reads every top-level form from `src`.
///
/// # Errors
///
/// Returns an [`AlangError`] with the line number for unterminated
/// lists/strings and stray closing parens.
pub fn read_all(src: &str) -> Result<Vec<Value>, AlangError> {
    let mut r = Reader {
        chars: src.chars().peekable(),
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(form) = r.read_form()? {
        out.push(form);
    }
    Ok(out)
}

/// Reads exactly one form.
///
/// # Errors
///
/// Fails when `src` holds zero or more than one top-level form, or on
/// any syntax error.
pub fn read_one(src: &str) -> Result<Value, AlangError> {
    let forms = read_all(src)?;
    match forms.len() {
        1 => Ok(forms.into_iter().next().expect("len checked")),
        0 => Err(AlangError::new("no form in input")),
        n => Err(AlangError::new(format!("expected one form, found {n}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_parse_by_type() {
        assert!(matches!(read_one("42").unwrap(), Value::Int(42)));
        assert!(matches!(read_one("-7").unwrap(), Value::Int(-7)));
        assert!(matches!(read_one("2.5").unwrap(), Value::Real(_)));
        assert!(matches!(read_one("#t").unwrap(), Value::Bool(true)));
        assert!(matches!(read_one("nil").unwrap(), Value::Nil));
        assert!(matches!(read_one("foo-bar!").unwrap(), Value::Sym(_)));
        assert!(matches!(read_one("\"hi\\n\"").unwrap(), Value::Str(_)));
    }

    #[test]
    fn nested_lists() {
        let v = read_one("(a (b 1) \"s\")").unwrap();
        assert_eq!(v.to_string(), "(a (b 1) \"s\")");
    }

    #[test]
    fn quote_sugar() {
        let v = read_one("'(1 2)").unwrap();
        assert_eq!(v.to_string(), "(quote (1 2))");
    }

    #[test]
    fn comments_are_skipped() {
        let forms = read_all("; header\n1 ; trailing\n2").unwrap();
        assert_eq!(forms.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_all("(a\n(b").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(read_all(")").is_err());
        assert!(read_one("1 2").is_err());
        assert!(read_one("").is_err());
    }
}
