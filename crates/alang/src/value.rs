//! a/L runtime values.

use std::fmt;
use std::rc::Rc;

use crate::env::Env;

/// A native (Rust-implemented) builtin function.
pub type NativeFn = fn(&mut crate::eval::Ctx<'_>, &[Value]) -> Result<Value, crate::AlangError>;

/// An a/L value. Code is data: the reader produces `Value`s and the
/// evaluator consumes them.
#[derive(Clone)]
pub enum Value {
    /// The empty value, also the empty list terminator in predicates.
    Nil,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Real number.
    Real(f64),
    /// String.
    Str(String),
    /// Symbol (identifier).
    Sym(String),
    /// Proper list.
    List(Vec<Value>),
    /// Builtin function.
    Native(&'static str, NativeFn),
    /// User-defined function.
    Lambda(Rc<LambdaDef>),
}

/// A user lambda: parameter names, body forms, and the captured
/// environment.
pub struct LambdaDef {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body forms, evaluated in order; the last is the result.
    pub body: Vec<Value>,
    /// Captured lexical environment.
    pub env: Env,
}

impl Value {
    /// Truthiness: everything except `#f` and `nil` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false) | Value::Nil)
    }

    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Sym(_) => "symbol",
            Value::List(_) => "list",
            Value::Native(_, _) => "native",
            Value::Lambda(_) => "lambda",
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to f64 for `Int` and `Real`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Structural equality (functions compare by identity name only).
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equals(y))
            }
            (Value::Native(a, _), Value::Native(b, _)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Native(name, _) => write!(f, "#<native {name}>"),
            Value::Lambda(_) => write!(f, "#<lambda>"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Str(String::new()).is_truthy());
    }

    #[test]
    fn display_forms() {
        let v = Value::List(vec![
            Value::Sym("a".into()),
            Value::Int(1),
            Value::Str("s".into()),
        ]);
        assert_eq!(v.to_string(), "(a 1 \"s\")");
        assert_eq!(Value::Bool(true).to_string(), "#t");
    }

    #[test]
    fn numeric_equality_crosses_int_and_real() {
        assert!(Value::Int(2).equals(&Value::Real(2.0)));
        assert!(!Value::Int(2).equals(&Value::Real(2.5)));
    }

    #[test]
    fn list_equality_is_deep() {
        let a = Value::List(vec![Value::Int(1), Value::List(vec![Value::Int(2)])]);
        let b = Value::List(vec![Value::Int(1), Value::List(vec![Value::Int(2)])]);
        assert!(a.equals(&b));
    }
}
