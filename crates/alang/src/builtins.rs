//! Builtin functions registered into every interpreter's root
//! environment.

use crate::env::Env;
use crate::eval::Ctx;
use crate::value::Value;
use crate::AlangError;

fn err(msg: impl Into<String>) -> AlangError {
    AlangError::new(msg)
}

fn want(args: &[Value], n: usize, who: &str) -> Result<(), AlangError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(format!("{who}: expected {n} args, got {}", args.len())))
    }
}

fn num2(args: &[Value], who: &str) -> Result<(f64, f64, bool), AlangError> {
    want(args, 2, who)?;
    let both_int = matches!((&args[0], &args[1]), (Value::Int(_), Value::Int(_)));
    let a = args[0]
        .as_f64()
        .ok_or_else(|| err(format!("{who}: non-numeric {}", args[0])))?;
    let b = args[1]
        .as_f64()
        .ok_or_else(|| err(format!("{who}: non-numeric {}", args[1])))?;
    Ok((a, b, both_int))
}

fn str1<'a>(args: &'a [Value], who: &str) -> Result<&'a str, AlangError> {
    want(args, 1, who)?;
    args[0]
        .as_str()
        .ok_or_else(|| err(format!("{who}: expected string, got {}", args[0])))
}

// --- arithmetic ---

fn add(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    fold_arith(args, "+", 0.0, |a, b| a + b)
}

fn sub(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    if args.len() == 1 {
        return match &args[0] {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Real(r) => Ok(Value::Real(-r)),
            other => Err(err(format!("-: non-numeric {other}"))),
        };
    }
    let (a, b, ints) = num2(args, "-")?;
    Ok(mknum(a - b, ints))
}

fn mul(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    fold_arith(args, "*", 1.0, |a, b| a * b)
}

fn div(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let (a, b, ints) = num2(args, "/")?;
    if b == 0.0 {
        return Err(err("/: division by zero"));
    }
    if ints && (a as i64) % (b as i64) == 0 {
        Ok(Value::Int(a as i64 / b as i64))
    } else {
        Ok(Value::Real(a / b))
    }
}

fn modulo(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "mod")?;
    let (Some(a), Some(b)) = (args[0].as_int(), args[1].as_int()) else {
        return Err(err("mod: integer arguments required"));
    };
    if b == 0 {
        return Err(err("mod: division by zero"));
    }
    Ok(Value::Int(a.rem_euclid(b)))
}

fn fold_arith(
    args: &[Value],
    who: &str,
    unit: f64,
    f: fn(f64, f64) -> f64,
) -> Result<Value, AlangError> {
    let mut acc = unit;
    let mut all_int = true;
    for a in args {
        if !matches!(a, Value::Int(_)) {
            all_int = false;
        }
        acc = f(
            acc,
            a.as_f64()
                .ok_or_else(|| err(format!("{who}: non-numeric {a}")))?,
        );
    }
    Ok(mknum(acc, all_int))
}

fn mknum(v: f64, int: bool) -> Value {
    if int {
        Value::Int(v as i64)
    } else {
        Value::Real(v)
    }
}

// --- comparison ---

fn eq(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "=")?;
    Ok(Value::Bool(args[0].equals(&args[1])))
}

fn cmp(args: &[Value], who: &str, f: fn(f64, f64) -> bool) -> Result<Value, AlangError> {
    let (a, b, _) = num2(args, who)?;
    Ok(Value::Bool(f(a, b)))
}

fn lt(_: &mut Ctx<'_>, a: &[Value]) -> Result<Value, AlangError> {
    cmp(a, "<", |x, y| x < y)
}
fn gt(_: &mut Ctx<'_>, a: &[Value]) -> Result<Value, AlangError> {
    cmp(a, ">", |x, y| x > y)
}
fn le(_: &mut Ctx<'_>, a: &[Value]) -> Result<Value, AlangError> {
    cmp(a, "<=", |x, y| x <= y)
}
fn ge(_: &mut Ctx<'_>, a: &[Value]) -> Result<Value, AlangError> {
    cmp(a, ">=", |x, y| x >= y)
}

fn not_fn(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "not")?;
    Ok(Value::Bool(!args[0].is_truthy()))
}

// --- lists ---

fn list_fn(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    Ok(Value::List(args.to_vec()))
}

fn car(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "car")?;
    match &args[0] {
        Value::List(items) if !items.is_empty() => Ok(items[0].clone()),
        _ => Err(err("car: empty or non-list")),
    }
}

fn cdr(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "cdr")?;
    match &args[0] {
        Value::List(items) if !items.is_empty() => Ok(Value::List(items[1..].to_vec())),
        _ => Err(err("cdr: empty or non-list")),
    }
}

fn cons(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "cons")?;
    match &args[1] {
        Value::List(items) => {
            let mut out = Vec::with_capacity(items.len() + 1);
            out.push(args[0].clone());
            out.extend(items.iter().cloned());
            Ok(Value::List(out))
        }
        Value::Nil => Ok(Value::List(vec![args[0].clone()])),
        other => Err(err(format!("cons: tail must be a list, got {other}"))),
    }
}

fn length(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "length")?;
    match &args[0] {
        Value::List(items) => Ok(Value::Int(items.len() as i64)),
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        Value::Nil => Ok(Value::Int(0)),
        other => Err(err(format!("length: {other} has no length"))),
    }
}

fn nth(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "nth")?;
    let i = args[0].as_int().ok_or_else(|| err("nth: bad index"))?;
    match &args[1] {
        Value::List(items) => Ok(items.get(i as usize).cloned().unwrap_or(Value::Nil)),
        other => Err(err(format!("nth: not a list: {other}"))),
    }
}

fn append(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let mut out = Vec::new();
    for a in args {
        match a {
            Value::List(items) => out.extend(items.iter().cloned()),
            Value::Nil => {}
            other => return Err(err(format!("append: not a list: {other}"))),
        }
    }
    Ok(Value::List(out))
}

fn reverse(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "reverse")?;
    match &args[0] {
        Value::List(items) => Ok(Value::List(items.iter().rev().cloned().collect())),
        other => Err(err(format!("reverse: not a list: {other}"))),
    }
}

fn map_fn(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "map")?;
    let Value::List(items) = &args[1] else {
        return Err(err("map: second argument must be a list"));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(crate::eval::apply(
            &args[0],
            std::slice::from_ref(item),
            ctx,
        )?);
    }
    Ok(Value::List(out))
}

fn filter_fn(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "filter")?;
    let Value::List(items) = &args[1] else {
        return Err(err("filter: second argument must be a list"));
    };
    let mut out = Vec::new();
    for item in items {
        if crate::eval::apply(&args[0], std::slice::from_ref(item), ctx)?.is_truthy() {
            out.push(item.clone());
        }
    }
    Ok(Value::List(out))
}

// --- strings ---

fn string_append(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let mut out = String::new();
    for a in args {
        match a {
            Value::Str(s) => out.push_str(s),
            other => out.push_str(&other.to_string()),
        }
    }
    Ok(Value::Str(out))
}

fn substring(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 3, "substring")?;
    let s = args[0]
        .as_str()
        .ok_or_else(|| err("substring: first arg must be a string"))?;
    let from = args[1]
        .as_int()
        .ok_or_else(|| err("substring: bad start"))? as usize;
    let to = args[2].as_int().ok_or_else(|| err("substring: bad end"))? as usize;
    let chars: Vec<char> = s.chars().collect();
    if from > to || to > chars.len() {
        return Err(err(format!(
            "substring: range {from}..{to} out of bounds for length {}",
            chars.len()
        )));
    }
    Ok(Value::Str(chars[from..to].iter().collect()))
}

fn string_index(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "string-index")?;
    let s = args[0]
        .as_str()
        .ok_or_else(|| err("string-index: haystack must be a string"))?;
    let needle = args[1]
        .as_str()
        .ok_or_else(|| err("string-index: needle must be a string"))?;
    match s.find(needle) {
        Some(byte_pos) => Ok(Value::Int(s[..byte_pos].chars().count() as i64)),
        None => Ok(Value::Int(-1)),
    }
}

fn string_split(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "string-split")?;
    let s = args[0]
        .as_str()
        .ok_or_else(|| err("string-split: first arg must be a string"))?;
    let sep = args[1]
        .as_str()
        .ok_or_else(|| err("string-split: separator must be a string"))?;
    let parts: Vec<Value> = if sep.is_empty() {
        s.split_whitespace().map(|p| Value::Str(p.into())).collect()
    } else {
        s.split(sep).map(|p| Value::Str(p.into())).collect()
    };
    Ok(Value::List(parts))
}

fn string_replace(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 3, "string-replace")?;
    let s = args[0]
        .as_str()
        .ok_or_else(|| err("string-replace: first arg must be a string"))?;
    let from = args[1]
        .as_str()
        .ok_or_else(|| err("string-replace: pattern must be a string"))?;
    let to = args[2]
        .as_str()
        .ok_or_else(|| err("string-replace: replacement must be a string"))?;
    Ok(Value::Str(s.replace(from, to)))
}

fn string_upcase(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    Ok(Value::Str(str1(args, "string-upcase")?.to_uppercase()))
}

fn string_downcase(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    Ok(Value::Str(str1(args, "string-downcase")?.to_lowercase()))
}

fn string_to_number(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let s = str1(args, "string->number")?.trim();
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    match s.parse::<f64>() {
        Ok(r) => Ok(Value::Real(r)),
        Err(_) => Ok(Value::Nil),
    }
}

fn number_to_string(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "number->string")?;
    match &args[0] {
        Value::Int(i) => Ok(Value::Str(i.to_string())),
        Value::Real(r) => Ok(Value::Str(r.to_string())),
        other => Err(err(format!("number->string: not a number: {other}"))),
    }
}

fn symbol_to_string(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "symbol->string")?;
    match &args[0] {
        Value::Sym(s) => Ok(Value::Str(s.clone())),
        other => Err(err(format!("symbol->string: not a symbol: {other}"))),
    }
}

fn min_fn(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    fold_extremum(args, "min", |a, b| a < b)
}

fn max_fn(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    fold_extremum(args, "max", |a, b| a > b)
}

fn fold_extremum(
    args: &[Value],
    who: &str,
    better: fn(f64, f64) -> bool,
) -> Result<Value, AlangError> {
    let mut best: Option<&Value> = None;
    for a in args {
        let x = a
            .as_f64()
            .ok_or_else(|| err(format!("{who}: non-numeric {a}")))?;
        let replace = match best {
            Some(b) => better(x, b.as_f64().expect("checked numeric")),
            None => true,
        };
        if replace {
            best = Some(a);
        }
    }
    best.cloned()
        .ok_or_else(|| err(format!("{who}: needs at least one argument")))
}

fn abs_fn(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "abs")?;
    match &args[0] {
        Value::Int(i) => Ok(Value::Int(i.abs())),
        Value::Real(r) => Ok(Value::Real(r.abs())),
        other => Err(err(format!("abs: non-numeric {other}"))),
    }
}

fn assoc(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "assoc")?;
    let Value::List(pairs) = &args[1] else {
        return Err(err("assoc: second argument must be a list of pairs"));
    };
    for pair in pairs {
        if let Value::List(kv) = pair {
            if let Some(k) = kv.first() {
                if k.equals(&args[0]) {
                    return Ok(pair.clone());
                }
            }
        }
    }
    Ok(Value::Nil)
}

// --- predicates ---

fn is_null(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "null?")?;
    let empty = match &args[0] {
        Value::Nil => true,
        Value::List(items) => items.is_empty(),
        _ => false,
    };
    Ok(Value::Bool(empty))
}

fn is_list(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "list?")?;
    Ok(Value::Bool(matches!(&args[0], Value::List(_))))
}

fn is_string(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "string?")?;
    Ok(Value::Bool(matches!(&args[0], Value::Str(_))))
}

fn is_number(_: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 1, "number?")?;
    Ok(Value::Bool(matches!(
        &args[0],
        Value::Int(_) | Value::Real(_)
    )))
}

// --- output ---

fn print_fn(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let line = args
        .iter()
        .map(|a| match a {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ");
    ctx.output.push(line);
    Ok(Value::Nil)
}

// --- host access ---

fn prop_get(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let key = str1(args, "prop-get")?;
    Ok(ctx.host.get(key).unwrap_or(Value::Nil))
}

fn prop_set(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 2, "prop-set!")?;
    let key = args[0]
        .as_str()
        .ok_or_else(|| err("prop-set!: key must be a string"))?;
    ctx.host
        .set(key, args[1].clone())
        .map_err(AlangError::new)?;
    Ok(args[1].clone())
}

fn prop_remove(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let key = str1(args, "prop-remove!")?;
    Ok(ctx.host.remove(key).unwrap_or(Value::Nil))
}

fn prop_names(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    want(args, 0, "prop-names")?;
    Ok(Value::List(
        ctx.host.keys().into_iter().map(Value::Str).collect(),
    ))
}

fn ctx_get(ctx: &mut Ctx<'_>, args: &[Value]) -> Result<Value, AlangError> {
    let key = str1(args, "ctx")?;
    Ok(ctx.host.context(key).unwrap_or(Value::Nil))
}

/// Installs every builtin into `env`.
pub fn install(env: &Env) {
    let defs: &[(&'static str, crate::value::NativeFn)] = &[
        ("+", add),
        ("-", sub),
        ("*", mul),
        ("/", div),
        ("mod", modulo),
        ("=", eq),
        ("<", lt),
        (">", gt),
        ("<=", le),
        (">=", ge),
        ("not", not_fn),
        ("list", list_fn),
        ("car", car),
        ("cdr", cdr),
        ("cons", cons),
        ("length", length),
        ("nth", nth),
        ("append", append),
        ("reverse", reverse),
        ("min", min_fn),
        ("max", max_fn),
        ("abs", abs_fn),
        ("assoc", assoc),
        ("map", map_fn),
        ("filter", filter_fn),
        ("string-append", string_append),
        ("substring", substring),
        ("string-index", string_index),
        ("string-split", string_split),
        ("string-replace", string_replace),
        ("string-upcase", string_upcase),
        ("string-downcase", string_downcase),
        ("string->number", string_to_number),
        ("number->string", number_to_string),
        ("symbol->string", symbol_to_string),
        ("null?", is_null),
        ("list?", is_list),
        ("string?", is_string),
        ("number?", is_number),
        ("print", print_fn),
        ("prop-get", prop_get),
        ("prop-set!", prop_set),
        ("prop-remove!", prop_remove),
        ("prop-names", prop_names),
        ("ctx", ctx_get),
    ];
    for (name, f) in defs {
        env.define(*name, Value::Native(name, *f));
    }
}
