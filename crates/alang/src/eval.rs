//! The a/L evaluator.

use std::rc::Rc;

use crate::env::Env;
use crate::host::Host;
use crate::value::{LambdaDef, Value};
use crate::AlangError;

/// Evaluation context threaded through every call: the design host plus
/// collected `print` output.
pub struct Ctx<'a> {
    /// The design-side host.
    pub host: &'a mut dyn Host,
    /// Lines produced by `(print ...)`.
    pub output: &'a mut Vec<String>,
    /// Remaining evaluation steps; guards against runaway scripts.
    pub fuel: u64,
}

impl Ctx<'_> {
    fn spend(&mut self) -> Result<(), AlangError> {
        if self.fuel == 0 {
            return Err(AlangError::new("evaluation fuel exhausted"));
        }
        self.fuel -= 1;
        Ok(())
    }
}

/// Evaluates one form in `env`.
///
/// # Errors
///
/// Returns [`AlangError`] for unbound symbols, malformed special forms,
/// arity/type errors from builtins, and fuel exhaustion.
pub fn eval(form: &Value, env: &Env, ctx: &mut Ctx<'_>) -> Result<Value, AlangError> {
    ctx.spend()?;
    match form {
        Value::Nil
        | Value::Bool(_)
        | Value::Int(_)
        | Value::Real(_)
        | Value::Str(_)
        | Value::Native(_, _)
        | Value::Lambda(_) => Ok(form.clone()),
        Value::Sym(name) => env
            .lookup(name)
            .ok_or_else(|| AlangError::new(format!("unbound symbol `{name}`"))),
        Value::List(items) => {
            let Some(head) = items.first() else {
                return Ok(Value::List(Vec::new()));
            };
            if let Value::Sym(s) = head {
                match s.as_str() {
                    "quote" => {
                        return items
                            .get(1)
                            .cloned()
                            .ok_or_else(|| AlangError::new("quote needs one argument"));
                    }
                    "if" => {
                        if items.len() < 3 || items.len() > 4 {
                            return Err(AlangError::new("if needs 2 or 3 arguments"));
                        }
                        let cond = eval(&items[1], env, ctx)?;
                        return if cond.is_truthy() {
                            eval(&items[2], env, ctx)
                        } else if let Some(alt) = items.get(3) {
                            eval(alt, env, ctx)
                        } else {
                            Ok(Value::Nil)
                        };
                    }
                    "cond" => {
                        for clause in &items[1..] {
                            let Value::List(cl) = clause else {
                                return Err(AlangError::new("cond clause must be a list"));
                            };
                            if cl.is_empty() {
                                return Err(AlangError::new("empty cond clause"));
                            }
                            let test = if matches!(&cl[0], Value::Sym(s) if s == "else") {
                                Value::Bool(true)
                            } else {
                                eval(&cl[0], env, ctx)?
                            };
                            if test.is_truthy() {
                                let mut result = test;
                                for body in &cl[1..] {
                                    result = eval(body, env, ctx)?;
                                }
                                return Ok(result);
                            }
                        }
                        return Ok(Value::Nil);
                    }
                    "define" => {
                        match items.get(1) {
                            // (define (f a b) body...)
                            Some(Value::List(sig)) => {
                                let Some(Value::Sym(fname)) = sig.first() else {
                                    return Err(AlangError::new("define: bad function name"));
                                };
                                let params = param_names(&sig[1..])?;
                                let lambda = Value::Lambda(Rc::new(LambdaDef {
                                    params,
                                    body: items[2..].to_vec(),
                                    env: env.clone(),
                                }));
                                env.define(fname.clone(), lambda);
                                return Ok(Value::Sym(fname.clone()));
                            }
                            // (define x expr)
                            Some(Value::Sym(name)) => {
                                if items.len() != 3 {
                                    return Err(AlangError::new("define needs a value"));
                                }
                                let v = eval(&items[2], env, ctx)?;
                                env.define(name.clone(), v);
                                return Ok(Value::Sym(name.clone()));
                            }
                            _ => return Err(AlangError::new("define: bad target")),
                        }
                    }
                    "set!" => {
                        if items.len() != 3 {
                            return Err(AlangError::new("set! needs a name and a value"));
                        }
                        let Value::Sym(name) = &items[1] else {
                            return Err(AlangError::new("set!: target must be a symbol"));
                        };
                        let v = eval(&items[2], env, ctx)?;
                        if !env.assign(name, v.clone()) {
                            return Err(AlangError::new(format!("set!: unbound `{name}`")));
                        }
                        return Ok(v);
                    }
                    "lambda" => {
                        let Some(Value::List(params)) = items.get(1) else {
                            return Err(AlangError::new("lambda: missing parameter list"));
                        };
                        let params = param_names(params)?;
                        return Ok(Value::Lambda(Rc::new(LambdaDef {
                            params,
                            body: items[2..].to_vec(),
                            env: env.clone(),
                        })));
                    }
                    "let" => {
                        let Some(Value::List(bindings)) = items.get(1) else {
                            return Err(AlangError::new("let: missing bindings"));
                        };
                        let child = env.child();
                        for b in bindings {
                            let Value::List(pair) = b else {
                                return Err(AlangError::new("let: binding must be (name expr)"));
                            };
                            let [Value::Sym(name), expr] = pair.as_slice() else {
                                return Err(AlangError::new("let: binding must be (name expr)"));
                            };
                            let v = eval(expr, env, ctx)?;
                            child.define(name.clone(), v);
                        }
                        let mut result = Value::Nil;
                        for body in &items[2..] {
                            result = eval(body, &child, ctx)?;
                        }
                        return Ok(result);
                    }
                    "begin" => {
                        let mut result = Value::Nil;
                        for body in &items[1..] {
                            result = eval(body, env, ctx)?;
                        }
                        return Ok(result);
                    }
                    "and" => {
                        let mut result = Value::Bool(true);
                        for e in &items[1..] {
                            result = eval(e, env, ctx)?;
                            if !result.is_truthy() {
                                return Ok(result);
                            }
                        }
                        return Ok(result);
                    }
                    "or" => {
                        for e in &items[1..] {
                            let result = eval(e, env, ctx)?;
                            if result.is_truthy() {
                                return Ok(result);
                            }
                        }
                        return Ok(Value::Bool(false));
                    }
                    "while" => {
                        if items.len() < 2 {
                            return Err(AlangError::new("while needs a condition"));
                        }
                        let mut result = Value::Nil;
                        while eval(&items[1], env, ctx)?.is_truthy() {
                            for body in &items[2..] {
                                result = eval(body, env, ctx)?;
                            }
                        }
                        return Ok(result);
                    }
                    _ => {}
                }
            }
            // Function application.
            let func = eval(head, env, ctx)?;
            let mut args = Vec::with_capacity(items.len() - 1);
            for a in &items[1..] {
                args.push(eval(a, env, ctx)?);
            }
            apply(&func, &args, ctx)
        }
    }
}

fn param_names(params: &[Value]) -> Result<Vec<String>, AlangError> {
    params
        .iter()
        .map(|p| match p {
            Value::Sym(s) => Ok(s.clone()),
            other => Err(AlangError::new(format!(
                "parameter must be a symbol, got {other}"
            ))),
        })
        .collect()
}

/// Applies a function value to already-evaluated arguments.
///
/// # Errors
///
/// Fails when `func` is not callable or the body fails.
pub fn apply(func: &Value, args: &[Value], ctx: &mut Ctx<'_>) -> Result<Value, AlangError> {
    match func {
        Value::Native(_, f) => f(ctx, args),
        Value::Lambda(def) => {
            if args.len() != def.params.len() {
                return Err(AlangError::new(format!(
                    "arity mismatch: expected {} args, got {}",
                    def.params.len(),
                    args.len()
                )));
            }
            let frame = def.env.child();
            for (p, a) in def.params.iter().zip(args) {
                frame.define(p.clone(), a.clone());
            }
            let mut result = Value::Nil;
            for body in &def.body {
                result = eval(body, &frame, ctx)?;
            }
            Ok(result)
        }
        other => Err(AlangError::new(format!(
            "not callable: {} ({})",
            other,
            other.type_name()
        ))),
    }
}
