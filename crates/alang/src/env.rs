//! Lexical environments.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::value::Value;

#[derive(Default)]
struct Frame {
    vars: HashMap<String, Value>,
    parent: Option<Env>,
}

/// A shared, mutable lexical environment frame with an optional parent.
#[derive(Clone, Default)]
pub struct Env {
    frame: Rc<RefCell<Frame>>,
}

impl Env {
    /// Creates an empty root environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Creates a child environment whose lookups fall back to `self`.
    pub fn child(&self) -> Env {
        Env {
            frame: Rc::new(RefCell::new(Frame {
                vars: HashMap::new(),
                parent: Some(self.clone()),
            })),
        }
    }

    /// Defines (or redefines) a variable in this frame.
    pub fn define(&self, name: impl Into<String>, value: Value) {
        self.frame.borrow_mut().vars.insert(name.into(), value);
    }

    /// Looks a variable up through the parent chain.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        let frame = self.frame.borrow();
        if let Some(v) = frame.vars.get(name) {
            return Some(v.clone());
        }
        frame.parent.as_ref().and_then(|p| p.lookup(name))
    }

    /// Assigns to an existing variable (innermost binding wins).
    /// Returns `false` when the variable is not bound anywhere.
    pub fn assign(&self, name: &str, value: Value) -> bool {
        let mut frame = self.frame.borrow_mut();
        if frame.vars.contains_key(name) {
            frame.vars.insert(name.to_string(), value);
            return true;
        }
        match &frame.parent {
            Some(p) => p.assign(name, value),
            None => false,
        }
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let frame = self.frame.borrow();
        write!(
            f,
            "Env({} vars{})",
            frame.vars.len(),
            if frame.parent.is_some() {
                ", chained"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup_chain() {
        let root = Env::new();
        root.define("x", Value::Int(1));
        let child = root.child();
        child.define("y", Value::Int(2));
        assert_eq!(child.lookup("x").unwrap().as_int(), Some(1));
        assert_eq!(child.lookup("y").unwrap().as_int(), Some(2));
        assert!(root.lookup("y").is_none());
    }

    #[test]
    fn shadowing_and_assignment() {
        let root = Env::new();
        root.define("x", Value::Int(1));
        let child = root.child();
        child.define("x", Value::Int(10));
        assert_eq!(child.lookup("x").unwrap().as_int(), Some(10));
        assert!(child.assign("x", Value::Int(11)));
        assert_eq!(root.lookup("x").unwrap().as_int(), Some(1));
        // Assignment through the chain reaches the root binding.
        assert!(child.assign("x", Value::Int(12)));
        let fresh = root.child();
        assert!(fresh.assign("x", Value::Int(99)));
        assert_eq!(root.lookup("x").unwrap().as_int(), Some(99));
        assert!(!fresh.assign("zzz", Value::Nil));
    }
}
