//! Parser instrumentation: both dialect parsers emit `schematic.parse`
//! spans keyed by dialect, object counters that reconcile with
//! [`schematic::design::Design::stats`], and positioned error events.

use obs::{AttrValue, TraceRecorder};
use schematic::dialect::DialectId;
use schematic::gen::{generate, GenConfig};
use schematic::{cascade, viewstar};

#[test]
fn both_dialect_parsers_trace_object_counts() {
    let design = generate(&GenConfig::default());
    let vs_text = viewstar::write(&design);
    let mut as_cascade = design.clone();
    as_cascade.dialect = DialectId::Cascade;
    let cc_text = cascade::write(&as_cascade);

    let rec = TraceRecorder::new();
    let vs = viewstar::parse_recorded(&vs_text, &rec).expect("viewstar parses");
    let cc = cascade::parse_recorded(&cc_text, &rec).expect("cascade parses");

    assert_eq!(rec.span_count("schematic.parse"), 2);
    let expect = |d: &schematic::design::Design| {
        let s = d.stats();
        (s.cells + s.instances + s.wires + s.labels + s.connectors) as u64
    };
    assert_eq!(
        rec.counter("schematic.parse.objects"),
        expect(&vs) + expect(&cc)
    );

    // Each span carries its dialect attribute.
    let spans = rec.finished_spans();
    let dialects: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "schematic.parse")
        .filter_map(|s| match s.attr("dialect") {
            Some(AttrValue::Str(d)) => Some(d.clone()),
            _ => None,
        })
        .collect();
    assert!(dialects.contains(&"viewstar".to_string()));
    assert!(dialects.contains(&"cascade".to_string()));
}

#[test]
fn parse_errors_carry_positions_in_events() {
    let rec = TraceRecorder::new();
    let err = cascade::parse_recorded("(cascade (cell \"x\"", &rec).unwrap_err();
    assert_eq!(rec.counter("schematic.parse.errors"), 1);
    let events = rec.events();
    let ev = events
        .iter()
        .find(|e| e.name == "schematic.parse.error")
        .expect("error event recorded");
    let attr = |k: &str| {
        ev.attrs
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(attr("dialect"), Some(AttrValue::Str("cascade".into())));
    if let Some(pos) = err.pos {
        assert_eq!(attr("line"), Some(AttrValue::UInt(pos.line as u64)));
    }
}
