//! Property-based tests for the schematic substrate's core invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;
use schematic::bus::{BusSyntax, NetExpr, NetName};
use schematic::connectivity::extract_design;
use schematic::dialect::{check_conformance, DialectId, DialectRules};
use schematic::gen::{generate, GenConfig};
use schematic::geom::{Orient, Point, Transform};

fn arb_point() -> impl Strategy<Value = Point> {
    (-2000i64..2000, -2000i64..2000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_orient() -> impl Strategy<Value = Orient> {
    prop::sample::select(Orient::ALL.to_vec())
}

proptest! {
    #[test]
    fn orientations_form_a_group(a in arb_orient(), b in arb_orient(), c in arb_orient(), p in arb_point()) {
        // Closure + associativity observed through action on points.
        let left = c.apply(b.apply(a.apply(p)));
        let composed = a.compose(b).compose(c);
        prop_assert_eq!(composed.apply(p), left);
        // Inverse really inverts.
        prop_assert_eq!(a.inverse().apply(a.apply(p)), p);
        // Orientation preserves Manhattan distance from the origin.
        prop_assert_eq!(
            a.apply(p).manhattan(Point::new(0, 0)),
            p.manhattan(Point::new(0, 0))
        );
    }

    #[test]
    fn transforms_round_trip(origin in arb_point(), o in arb_orient(), p in arb_point()) {
        let t = Transform::new(origin, o);
        prop_assert_eq!(t.inverse().apply(t.apply(p)), p);
        // Composition law: (t2 . t1)(p) == t2(t1(p)).
        let t2 = Transform::new(Point::new(-origin.y, origin.x), o.inverse());
        prop_assert_eq!(t.then(t2).apply(p), t2.apply(t.apply(p)));
    }

    #[test]
    fn snapping_is_idempotent_and_on_grid(p in arb_point(), pitch in 1i64..64) {
        let s = p.snapped(pitch);
        prop_assert!(s.on_grid(pitch));
        prop_assert_eq!(s.snapped(pitch), s);
        // Snap moves each coordinate by at most pitch/2 (round-half-up).
        prop_assert!((s.x - p.x).abs() * 2 <= pitch);
        prop_assert!((s.y - p.y).abs() * 2 <= pitch);
    }

    #[test]
    fn viewstar_to_cascade_scaling_is_exact_on_grid(gx in -200i64..200, gy in -200i64..200) {
        // Any point on the Viewstar grid lands exactly on the Cascade
        // grid under the 5/8 factor, and scales back exactly.
        let v = DialectRules::viewstar();
        let c = DialectRules::cascade();
        let p = Point::new(gx * v.grid, gy * v.grid);
        let (num, den) = v.scale_to(&c);
        let q = p.scaled(num, den);
        prop_assert!(q.on_grid(c.grid));
        let (num2, den2) = c.scale_to(&v);
        prop_assert_eq!(q.scaled(num2, den2), p);
    }
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}"
}

fn arb_netname() -> impl Strategy<Value = NetName> {
    (
        arb_ident(),
        prop::option::of(-64i64..64),
        prop::option::of(0usize..4),
    )
        .prop_map(|(base, idx, postfix)| {
            let expr = match idx {
                Some(i) => NetExpr::Bit(base, i),
                None => NetExpr::Scalar(base),
            };
            let mut n = NetName {
                expr,
                postfix: None,
            };
            if let Some(k) = postfix {
                n = n.with_postfix(schematic::bus::VIEWSTAR_POSTFIXES[k]);
            }
            n
        })
}

proptest! {
    #[test]
    fn viewstar_format_parse_round_trips(name in arb_netname()) {
        let text = BusSyntax::Viewstar.format(&name);
        // Parse with the name's own base in scope so condensed forms
        // resolve the same way.
        let scope: BTreeSet<interop_core::IStr> = [name.expr.base().into()].into();
        let back = BusSyntax::Viewstar.parse(&text, &scope).expect("round trip parses");
        // Condensation may canonicalize `A0` -> Bit, so compare formats.
        prop_assert_eq!(BusSyntax::Viewstar.format(&back), text);
    }

    #[test]
    fn range_expansion_counts(base in arb_ident(), a in -32i64..32, b in -32i64..32) {
        let r = NetExpr::Range(base, a, b);
        let bits = r.bits();
        prop_assert_eq!(bits.len(), r.bit_count());
        prop_assert_eq!(bits.len() as i64, (a - b).abs() + 1);
        // Endpoints come out in declaration order.
        prop_assert!(matches!(&bits[0], NetExpr::Bit(_, i) if *i == a));
        prop_assert!(matches!(bits.last().expect("nonempty"), NetExpr::Bit(_, i) if *i == b));
    }
}

fn arb_gen_config() -> impl Strategy<Value = GenConfig> {
    (
        1u64..5000,
        2usize..16,
        1u32..4,
        0usize..3,
        prop::sample::select(vec![0usize, 2, 4]),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(seed, gates, pages, depth, bus, xp, postfix, analog, globals)| GenConfig {
                seed,
                gates_per_page: gates,
                pages,
                depth,
                bus_width: bus,
                cross_page_nets: xp,
                postfix_nets: postfix,
                analog_props: analog,
                globals,
                dialect: DialectId::Viewstar,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_designs_are_conformant_and_round_trip(cfg in arb_gen_config()) {
        let design = generate(&cfg);
        // Conformant under its own dialect.
        let violations = check_conformance(&design, &DialectRules::viewstar());
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Extraction is clean.
        let (_, errors) = extract_design(&design, &DialectRules::viewstar());
        prop_assert!(errors.is_empty(), "{errors:?}");
        // The Viewstar format is lossless.
        let text = schematic::viewstar::write(&design);
        let back = schematic::viewstar::parse(&text).expect("parses");
        prop_assert_eq!(back, design);
    }

    #[test]
    fn cascade_designs_round_trip_their_format(seed in 1u64..2000) {
        let design = generate(&GenConfig {
            seed,
            dialect: DialectId::Cascade,
            postfix_nets: false,
            gates_per_page: 8,
            ..GenConfig::default()
        });
        let text = schematic::cascade::write(&design);
        let back = schematic::cascade::parse(&text).expect("parses");
        prop_assert_eq!(back, design);
    }

    #[test]
    fn extraction_is_stable_under_wire_reordering(seed in 1u64..2000) {
        use schematic::netlist::compare;
        let design = generate(&GenConfig { seed, gates_per_page: 8, ..GenConfig::default() });
        let mut shuffled = design.clone();
        for cell in shuffled.cells_mut() {
            for sheet in &mut cell.sheets {
                sheet.wires.reverse();
                sheet.instances.reverse();
            }
        }
        let rules = DialectRules::viewstar();
        let (a, ea) = extract_design(&design, &rules);
        let (b, eb) = extract_design(&shuffled, &rules);
        prop_assert!(ea.is_empty() && eb.is_empty());
        let report = compare(&a, &b);
        prop_assert!(report.is_equivalent(), "{:?}", report.diffs);
    }
}

mod fuzz_safety {
    use super::*;
    use schematic::{cascade, neutral, viewstar};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// All three on-disk parsers return errors instead of
        /// panicking on arbitrary input.
        #[test]
        fn format_parsers_are_panic_free(src in ".{0,300}") {
            let _ = viewstar::parse(&src);
            let _ = cascade::parse(&src);
            let _ = neutral::import(&src, DialectId::Cascade);
        }

        /// Keyword soup through the line-based formats.
        #[test]
        fn format_parsers_survive_record_soup(
            toks in prop::collection::vec(
                prop::sample::select(vec![
                    "VIEWSTAR", "DESIGN", "CELL", "PAGE", "W", "I", "C", "T",
                    "ENDPAGE", "ENDCELL", "LIBRARY", "SYMBOL", "PIN", "GRID",
                    "0", "16", "-5", "R0", "input", "\"q\"", "NEUTRAL", "WIRE",
                    "NET", "POSTFIX",
                ]),
                0..40,
            ),
            newlines in prop::collection::vec(any::<bool>(), 0..40)
        ) {
            let mut src = String::new();
            for (t, nl) in toks.iter().zip(newlines.iter().chain(std::iter::repeat(&false))) {
                src.push_str(t);
                src.push(if *nl { '\n' } else { ' ' });
            }
            let _ = viewstar::parse(&src);
            let _ = neutral::import(&src, DialectId::Viewstar);
        }
    }
}
