//! Synthetic design generation.
//!
//! Benches and tests need parameterized designs exhibiting every issue
//! Section 2 of the paper catalogues: multi-page nets, buses with
//! condensed taps, postfix indicators, globals, analog properties, and
//! hierarchy. This generator builds dialect-conformant designs with all
//! of those features switchable.

use crate::design::{CellSchematic, Design, Library};
use crate::dialect::{DialectId, DialectRules};
use crate::geom::{Orient, Point};
use crate::property::Label;
use crate::sheet::{Connector, ConnectorKind, Instance, Sheet, Wire};
use crate::symbol::{PinDir, SymbolDef, SymbolRef};

/// A tiny deterministic PRNG (SplitMix64) so the crate needs no external
/// randomness dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// PRNG seed; same seed + same config = identical design.
    pub seed: u64,
    /// Gate count per page of each cell.
    pub gates_per_page: usize,
    /// Pages per cell.
    pub pages: u32,
    /// Hierarchy depth: 0 generates a flat top cell; `d > 0` generates a
    /// chain of `d` block cells below the top.
    pub depth: usize,
    /// Width of the generated data bus (0 disables the bus structure).
    pub bus_width: usize,
    /// Number of nets deliberately spanning consecutive pages.
    pub cross_page_nets: usize,
    /// Attach Viewstar postfix indicators (`-`) to some net names.
    /// Ignored for Cascade output (the grammar forbids them).
    pub postfix_nets: bool,
    /// Attach compound analog properties (`SPICE = "w=... l=..."`) that
    /// migration must reformat via a/L callbacks.
    pub analog_props: bool,
    /// Wire up `VDD`/`GND` as globals.
    pub globals: bool,
    /// Target dialect conventions.
    pub dialect: DialectId,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 1,
            gates_per_page: 12,
            pages: 2,
            depth: 1,
            bus_width: 4,
            cross_page_nets: 2,
            postfix_nets: true,
            analog_props: true,
            globals: true,
            dialect: DialectId::Viewstar,
        }
    }
}

impl GenConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> GenConfigBuilder {
        GenConfigBuilder {
            config: GenConfig::default(),
        }
    }

    /// Checks the configuration's internal consistency — the same rules
    /// [`GenConfigBuilder::build`] enforces.
    ///
    /// # Errors
    ///
    /// Returns the first [`GenConfigError`] found.
    pub fn validate(&self) -> Result<(), GenConfigError> {
        if self.pages == 0 {
            return Err(GenConfigError::ZeroPages);
        }
        if self.gates_per_page == 0 {
            return Err(GenConfigError::ZeroGatesPerPage);
        }
        if self.cross_page_nets > 0 && self.pages < 2 {
            return Err(GenConfigError::CrossPageNetsNeedTwoPages { pages: self.pages });
        }
        Ok(())
    }
}

/// A generator-configuration consistency failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenConfigError {
    /// A design needs at least one page per cell.
    ZeroPages,
    /// A page needs at least one gate.
    ZeroGatesPerPage,
    /// Page-spanning nets require at least two pages.
    CrossPageNetsNeedTwoPages {
        /// The configured page count.
        pages: u32,
    },
}

impl std::fmt::Display for GenConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenConfigError::ZeroPages => write!(f, "pages must be >= 1"),
            GenConfigError::ZeroGatesPerPage => write!(f, "gates_per_page must be >= 1"),
            GenConfigError::CrossPageNetsNeedTwoPages { pages } => {
                write!(f, "cross_page_nets requires >= 2 pages (got {pages})")
            }
        }
    }
}

impl std::error::Error for GenConfigError {}

/// Builder for [`GenConfig`] with validation at [`build`].
///
/// [`build`]: GenConfigBuilder::build
///
/// ```
/// use schematic::gen::{generate, GenConfig};
///
/// let config = GenConfig::builder()
///     .seed(7)
///     .pages(3)
///     .bus_width(8)
///     .build()
///     .expect("valid generator config");
/// let design = generate(&config);
/// assert!(design.cells().count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct GenConfigBuilder {
    config: GenConfig,
}

impl GenConfigBuilder {
    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the gate count per page.
    pub fn gates_per_page(mut self, gates: usize) -> Self {
        self.config.gates_per_page = gates;
        self
    }

    /// Sets the page count per cell.
    pub fn pages(mut self, pages: u32) -> Self {
        self.config.pages = pages;
        self
    }

    /// Sets the hierarchy depth below the top cell.
    pub fn depth(mut self, depth: usize) -> Self {
        self.config.depth = depth;
        self
    }

    /// Sets the generated bus width (0 disables the bus).
    pub fn bus_width(mut self, width: usize) -> Self {
        self.config.bus_width = width;
        self
    }

    /// Sets how many nets deliberately span consecutive pages.
    pub fn cross_page_nets(mut self, nets: usize) -> Self {
        self.config.cross_page_nets = nets;
        self
    }

    /// Enables or disables Viewstar postfix indicators on net names.
    pub fn postfix_nets(mut self, on: bool) -> Self {
        self.config.postfix_nets = on;
        self
    }

    /// Enables or disables compound analog properties.
    pub fn analog_props(mut self, on: bool) -> Self {
        self.config.analog_props = on;
        self
    }

    /// Enables or disables `VDD`/`GND` global wiring.
    pub fn globals(mut self, on: bool) -> Self {
        self.config.globals = on;
        self
    }

    /// Sets the target dialect conventions.
    pub fn dialect(mut self, dialect: DialectId) -> Self {
        self.config.dialect = dialect;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`GenConfigError`] found.
    pub fn build(self) -> Result<GenConfig, GenConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Names used by the generated primitive library.
pub const PRIMITIVE_LIB: &str = "primlib";
/// Library holding generated hierarchical block symbols.
pub const USER_LIB: &str = "userlib";

fn primitive_library(rules: &DialectRules) -> Library {
    let g = rules.grid;
    let mut lib = Library::new(PRIMITIVE_LIB);
    lib.add(
        SymbolDef::new(SymbolRef::new(PRIMITIVE_LIB, "inv", "symbol"), g)
            .with_pin("A", Point::new(0, 0), PinDir::Input)
            .with_pin("Y", Point::new(4 * g, 0), PinDir::Output)
            .with_body_segment(Point::new(g, -g), Point::new(g, g))
            .with_body_segment(Point::new(g, g), Point::new(3 * g, 0))
            .with_body_segment(Point::new(g, -g), Point::new(3 * g, 0)),
    );
    lib.add(
        SymbolDef::new(SymbolRef::new(PRIMITIVE_LIB, "nand2", "symbol"), g)
            .with_pin("A", Point::new(0, 0), PinDir::Input)
            .with_pin("B", Point::new(0, 2 * g), PinDir::Input)
            .with_pin("Y", Point::new(4 * g, 0), PinDir::Output)
            .with_body_segment(Point::new(g, -g), Point::new(g, 3 * g))
            .with_body_segment(Point::new(g, 3 * g), Point::new(3 * g, g))
            .with_body_segment(Point::new(g, -g), Point::new(3 * g, g)),
    );
    lib.add(
        SymbolDef::new(SymbolRef::new(PRIMITIVE_LIB, "nmos", "symbol"), g)
            .with_pin("G", Point::new(0, 0), PinDir::Input)
            .with_pin("D", Point::new(2 * g, 2 * g), PinDir::Passive)
            .with_pin("S", Point::new(2 * g, -2 * g), PinDir::Passive)
            .with_body_segment(Point::new(g, -g), Point::new(g, g)),
    );
    lib
}

fn bus_register(rules: &DialectRules, width: usize) -> SymbolDef {
    let g = rules.grid;
    let mut sym = SymbolDef::new(
        SymbolRef::new(PRIMITIVE_LIB, format!("reg{width}"), "symbol"),
        g,
    );
    for i in 0..width {
        sym.pins.push(crate::symbol::SymbolPin::new(
            format!("D<{i}>"),
            Point::new(0, 2 * g * i as i64),
            PinDir::Input,
        ));
    }
    sym.pins.push(crate::symbol::SymbolPin::new(
        "CLK",
        Point::new(4 * g, 0),
        PinDir::Input,
    ));
    sym
}

fn block_symbol(rules: &DialectRules, cell: &str) -> SymbolDef {
    let g = rules.grid;
    SymbolDef::new(SymbolRef::new(USER_LIB, cell, "symbol"), g)
        .with_pin("IN", Point::new(0, 0), PinDir::Input)
        .with_pin("OUT", Point::new(4 * g, 0), PinDir::Output)
        .with_body_segment(Point::new(g, -2 * g), Point::new(g, 2 * g))
        .with_body_segment(Point::new(g, 2 * g), Point::new(3 * g, 2 * g))
        .with_body_segment(Point::new(3 * g, -2 * g), Point::new(3 * g, 2 * g))
        .with_body_segment(Point::new(g, -2 * g), Point::new(3 * g, -2 * g))
}

/// Builds one cell: a gate chain per page with labelled nets, optional
/// bus/register structure, cross-page nets, globals, and `IN`/`OUT`
/// ports bound to the chain ends.
#[allow(clippy::too_many_arguments)]
fn build_cell(
    name: &str,
    cfg: &GenConfig,
    rules: &DialectRules,
    rng: &mut SplitMix64,
    child: Option<&str>,
) -> CellSchematic {
    let g = rules.grid;
    let font = rules.font;
    let mut cell = CellSchematic::new(name);
    cell.ports.push(crate::symbol::SymbolPin::new(
        "IN",
        Point::new(0, 0),
        PinDir::Input,
    ));
    cell.ports.push(crate::symbol::SymbolPin::new(
        "OUT",
        Point::new(4 * g, 0),
        PinDir::Output,
    ));

    let explicit = !rules.implicit_page_nets;
    let mut inst_counter = 0usize;
    let col_pitch = 10 * g;
    let row_pitch = 8 * g;
    let cols = 8usize;

    for page in 1..=cfg.pages {
        let mut sheet = Sheet::new(page);
        let y_base = 4 * g;
        let mut prev_out: Option<Point> = None;

        for k in 0..cfg.gates_per_page {
            inst_counter += 1;
            let col = (k % cols) as i64;
            let row = (k / cols) as i64;
            let origin = Point::new(2 * g + col * col_pitch, y_base + row * row_pitch);
            let kind = if rng.chance(1, 4) { "nand2" } else { "inv" };
            let iname = format!("I{inst_counter}");
            let mut inst = Instance::new(
                iname.clone(),
                SymbolRef::new(PRIMITIVE_LIB, kind, "symbol"),
                origin,
                Orient::R0,
            );
            if cfg.analog_props && rng.chance(1, 3) {
                let w = 6 + rng.below(20);
                let l = 2 + rng.below(6);
                inst.props
                    .set("SPICE", format!("w={}.{}u l=0.{}u", w / 10, w % 10, l));
            }
            inst.props.set("SIZE", (1 + rng.below(4)) as i64);
            sheet.instances.push(inst);

            let in_at = origin; // pin A at local (0,0)
            let out_at = origin.offset(4 * g, 0);

            // Connect previous output to this input with an L-route.
            if let Some(prev) = prev_out {
                let net_idx = inst_counter;
                let mut text = format!("n{net_idx}");
                if cfg.postfix_nets
                    && rules.bus == crate::bus::BusSyntax::Viewstar
                    && rng.chance(1, 5)
                {
                    text.push('-');
                }
                let pts = if prev.y == in_at.y {
                    vec![prev, in_at]
                } else {
                    // Row wrap: route around the rows through a free
                    // channel one grid below the new row, so the wire
                    // never runs along a pin row.
                    let x_right = prev.x + g;
                    let y_chan = in_at.y - g;
                    let x_left = in_at.x - g;
                    vec![
                        prev,
                        Point::new(x_right, prev.y),
                        Point::new(x_right, y_chan),
                        Point::new(x_left, y_chan),
                        Point::new(x_left, in_at.y),
                        in_at,
                    ]
                };
                let label_at = pts[0].offset(g / 2, g / 2);
                sheet
                    .wires
                    .push(Wire::new(pts).with_label(Label::new(text, label_at, font)));
            } else {
                // First gate of the page: bind to IN (page 1) or to the
                // page-crossing net from the previous page.
                let stub = Point::new(in_at.x - 2 * g, in_at.y);
                let text = if page == 1 {
                    "IN".to_string()
                } else {
                    format!("pg{}_{}", page - 1, name_hash(name) % 97)
                };
                let w = Wire::new(vec![stub, in_at]).with_label(Label::new(
                    text.clone(),
                    stub.offset(0, g / 2),
                    font,
                ));
                sheet.wires.push(w);
                if explicit && page > 1 {
                    sheet
                        .connectors
                        .push(Connector::new(ConnectorKind::OffPage, text, stub));
                } else if explicit && page == 1 {
                    sheet
                        .connectors
                        .push(Connector::new(ConnectorKind::HierInput, "IN", stub));
                }
            }
            prev_out = Some(out_at);

            // Tie nand2's B input to a global or a local tie-off.
            if kind == "nand2" {
                let b_at = origin.offset(0, 2 * g);
                let stub = b_at.offset(-2 * g, 0);
                let text = if cfg.globals && rng.chance(1, 2) {
                    "VDD".to_string()
                } else {
                    format!("tie{inst_counter}")
                };
                sheet
                    .wires
                    .push(Wire::new(vec![stub, b_at]).with_label(Label::new(
                        text,
                        stub.offset(0, g / 2),
                        font,
                    )));
            }
        }

        // Close the page: last output feeds OUT (final page) or a
        // page-crossing net.
        if let Some(out) = prev_out {
            let stub = out.offset(2 * g, 0);
            let text = if page == cfg.pages {
                "OUT".to_string()
            } else {
                format!("pg{}_{}", page, name_hash(name) % 97)
            };
            sheet
                .wires
                .push(Wire::new(vec![out, stub]).with_label(Label::new(
                    text.clone(),
                    out.offset(g / 2, g / 2),
                    font,
                )));
            if explicit && page == cfg.pages {
                sheet
                    .connectors
                    .push(Connector::new(ConnectorKind::HierOutput, "OUT", stub));
            } else if explicit {
                sheet
                    .connectors
                    .push(Connector::new(ConnectorKind::OffPage, text, stub));
            }
        }

        // Extra deliberately cross-page nets.
        for j in 0..cfg.cross_page_nets {
            if page == cfg.pages {
                continue;
            }
            let y = y_base - 2 * g - 2 * g * j as i64;
            let a = Point::new(2 * g, y);
            let b = Point::new(6 * g, y);
            let text = format!("xp{j}");
            sheet
                .wires
                .push(Wire::new(vec![a, b]).with_label(Label::new(
                    text.clone(),
                    a.offset(0, g / 2),
                    font,
                )));
            if explicit {
                sheet
                    .connectors
                    .push(Connector::new(ConnectorKind::OffPage, text, b));
            }
        }

        // Bus + register on page 1.
        if cfg.bus_width > 0 && page == 1 {
            let w = cfg.bus_width;
            cell.buses.insert("D".into());
            let reg_origin = Point::new(2 * g + cols as i64 * col_pitch + 4 * g, y_base);
            sheet.instances.push(Instance::new(
                format!("R{page}"),
                SymbolRef::new(PRIMITIVE_LIB, format!("reg{w}"), "symbol"),
                reg_origin,
                Orient::R0,
            ));
            // Vertical bundle through every D pin.
            let top_y = reg_origin.y + 2 * g * (w as i64 - 1);
            sheet.wires.push(
                Wire::new(vec![reg_origin, Point::new(reg_origin.x, top_y + 2 * g)]).with_label(
                    Label::new(
                        format!("D<0:{}>", w - 1),
                        reg_origin.offset(g / 2, g / 2),
                        font,
                    ),
                ),
            );
            // A condensed tap in Viewstar, explicit in Cascade.
            let tap_at = Point::new(reg_origin.x - 4 * g, reg_origin.y - 2 * g);
            let tap_text = match rules.bus {
                crate::bus::BusSyntax::Viewstar => "D1".to_string(),
                crate::bus::BusSyntax::Cascade => "D<1>".to_string(),
            };
            sheet.wires.push(
                Wire::new(vec![tap_at, tap_at.offset(2 * g, 0)]).with_label(Label::new(
                    tap_text,
                    tap_at.offset(0, g / 2),
                    font,
                )),
            );
        }

        // Instantiate the child block, if any, fed from a tap net.
        if let Some(child_cell) = child {
            if page == 1 {
                let at = Point::new(2 * g, y_base + 4 * row_pitch);
                inst_counter += 1;
                sheet.instances.push(Instance::new(
                    format!("X{inst_counter}"),
                    SymbolRef::new(USER_LIB, child_cell, "symbol"),
                    at,
                    Orient::R0,
                ));
                // Drive the child's IN from the IN net; expose its OUT.
                let in_stub = at.offset(-2 * g, 0);
                sheet
                    .wires
                    .push(Wire::new(vec![in_stub, at]).with_label(Label::new(
                        "IN",
                        in_stub.offset(0, g / 2),
                        font,
                    )));
                let out_at = at.offset(4 * g, 0);
                sheet
                    .wires
                    .push(
                        Wire::new(vec![out_at, out_at.offset(2 * g, 0)]).with_label(Label::new(
                            format!("sub{inst_counter}"),
                            out_at.offset(0, g / 2),
                            font,
                        )),
                    );
            }
        }

        cell.sheets.push(sheet);
    }
    cell
}

fn name_hash(s: &str) -> u64 {
    s.bytes().fold(1469598103934665603u64, |h, b| {
        (h ^ b as u64).wrapping_mul(1099511628211)
    })
}

/// Generates a dialect-conformant synthetic design.
///
/// The result passes [`crate::dialect::check_conformance`] for the
/// configured dialect and extracts without errors, so it is a valid
/// starting point for migration and benchmarking.
pub fn generate(cfg: &GenConfig) -> Design {
    let rules = DialectRules::for_id(cfg.dialect);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut design = Design::new(format!("gen{}", cfg.seed), cfg.dialect);
    if cfg.globals {
        design.add_global("VDD");
        design.add_global("GND");
    }

    let mut prim = primitive_library(&rules);
    if cfg.bus_width > 0 {
        prim.add(bus_register(&rules, cfg.bus_width));
    }
    design.add_library(prim);

    let mut user = Library::new(USER_LIB);
    let mut child: Option<String> = None;
    let mut cells: Vec<CellSchematic> = Vec::new();
    for d in (0..cfg.depth).rev() {
        let cell_name = format!("blk{d}");
        user.add(block_symbol(&rules, &cell_name));
        let cell = build_cell(&cell_name, cfg, &rules, &mut rng, child.as_deref());
        child = Some(cell_name);
        cells.push(cell);
    }
    design.add_library(user);

    let top = build_cell("top", cfg, &rules, &mut rng, child.as_deref());
    design.add_cell(top);
    for c in cells {
        design.add_cell(c);
    }
    design.set_top("top");
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::extract_design;
    use crate::dialect::check_conformance;

    #[test]
    fn generated_viewstar_design_is_conformant() {
        let cfg = GenConfig::default();
        let d = generate(&cfg);
        let v = check_conformance(&d, &DialectRules::viewstar());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn generated_cascade_design_is_conformant() {
        let cfg = GenConfig {
            dialect: DialectId::Cascade,
            postfix_nets: false,
            ..GenConfig::default()
        };
        let d = generate(&cfg);
        let v = check_conformance(&d, &DialectRules::cascade());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn generated_design_extracts_cleanly() {
        let d = generate(&GenConfig::default());
        let (nl, errs) = extract_design(&d, &DialectRules::viewstar());
        assert!(errs.is_empty(), "errors: {errs:?}");
        assert!(nl.net_count() > 0);
        assert!(nl.pin_count() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn depth_controls_cell_count() {
        let flat = generate(&GenConfig {
            depth: 0,
            ..GenConfig::default()
        });
        assert_eq!(flat.stats().cells, 1);
        let deep = generate(&GenConfig {
            depth: 3,
            ..GenConfig::default()
        });
        assert_eq!(deep.stats().cells, 4);
    }

    #[test]
    fn builder_validates_at_build() {
        let cfg = GenConfig::builder()
            .seed(3)
            .pages(4)
            .cross_page_nets(3)
            .build()
            .expect("valid");
        assert_eq!((cfg.seed, cfg.pages, cfg.cross_page_nets), (3, 4, 3));
        assert_eq!(
            GenConfig::builder().pages(0).build().unwrap_err(),
            GenConfigError::ZeroPages
        );
        assert_eq!(
            GenConfig::builder()
                .pages(1)
                .cross_page_nets(1)
                .build()
                .unwrap_err(),
            GenConfigError::CrossPageNetsNeedTwoPages { pages: 1 }
        );
    }

    #[test]
    fn splitmix_is_reproducible_and_bounded() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            assert!(a.below(10) < 10);
        }
    }
}
