//! A vendor-neutral schematic interchange format.
//!
//! The paper's long-term answer to point-to-point translation is
//! standardization ("in spite of vendor initiatives such as CFI, the
//! glue was unique to each vendor"). This module is that standard, in
//! miniature: an EDIF-like neutral form that any dialect can export to
//! and import from, turning `N·(N-1)` pairwise translators into `2·N`
//! converters.
//!
//! The neutral form normalizes what the dialects disagree on:
//!
//! * geometry is carried in **DBU** (grid-independent),
//! * net names are carried in **explicit** bus syntax with postfix
//!   indicators encoded as a separate attribute,
//! * page connections are always **explicit** (off-page markers),
//! * fonts are not carried at all — cosmetics are the importing
//!   dialect's business.
//!
//! Connectivity survives the round trip exactly (see the crate tests);
//! cosmetic information (fonts, exact label anchors) is normalized, the
//! deliberate loss every real neutral format accepts.

use std::collections::BTreeSet;
use std::fmt;

use interop_core::intern::IStr;

use crate::bus::{BusSyntax, NetName};
use crate::design::{CellSchematic, Design, Library};
use crate::dialect::{DialectId, DialectRules};
use crate::geom::Point;
use crate::property::{Label, PropValue};
use crate::sheet::{Connector, ConnectorKind, Instance, Sheet, Wire};
use crate::symbol::{PinDir, SymbolDef, SymbolPin, SymbolRef};

/// Error importing neutral text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNeutralError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseNeutralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "neutral line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNeutralError {}

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains(' ') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Normalizes a net-name text from `syntax` into the neutral encoding:
/// explicit form plus a separated postfix attribute.
fn normalize_name(
    text: &str,
    buses: &BTreeSet<IStr>,
    syntax: BusSyntax,
) -> Result<(String, Option<char>), String> {
    let parsed: NetName = syntax.parse(text, buses).map_err(|e| e.to_string())?;
    let postfix = parsed.postfix;
    let plain = NetName {
        expr: parsed.expr,
        postfix: None,
    };
    Ok((BusSyntax::Cascade.format(&plain), postfix))
}

/// Exports a design to neutral text. Net names are normalized through
/// the design dialect's bus grammar.
///
/// # Errors
///
/// Returns a message naming any label that fails to parse under the
/// design's own grammar (such a design is malformed for its dialect).
pub fn export(design: &Design) -> Result<String, String> {
    let rules = DialectRules::for_id(design.dialect);
    let mut o = String::new();
    o.push_str("NEUTRAL 1\n");
    o.push_str(&format!(
        "DESIGN {} FROM {}\n",
        quote(&design.name),
        design.dialect
    ));
    o.push_str(&format!("TOP {}\n", quote(&design.top)));
    for g in design.globals() {
        o.push_str(&format!("GLOBAL {}\n", quote(g)));
    }
    for lib in design.libraries() {
        o.push_str(&format!("LIBRARY {}\n", quote(&lib.name)));
        for sym in lib.iter() {
            o.push_str(&format!(
                "SYMBOL {} {} GRID {}\n",
                quote(&sym.reference.cell),
                quote(&sym.reference.view),
                sym.grid
            ));
            for pin in &sym.pins {
                o.push_str(&format!(
                    "PIN {} {} {} {}\n",
                    quote(&pin.name),
                    pin.at.x,
                    pin.at.y,
                    pin.dir.keyword()
                ));
            }
            for (a, b) in &sym.body {
                o.push_str(&format!("BODY {} {} {} {}\n", a.x, a.y, b.x, b.y));
            }
            for (k, v) in sym.default_props.iter() {
                o.push_str(&format!("SPROP {} {}\n", quote(k), quote(&v.to_text())));
            }
            o.push_str("ENDSYMBOL\n");
        }
        o.push_str("ENDLIBRARY\n");
    }
    for (name, cell) in design.cells() {
        o.push_str(&format!("CELL {}\n", quote(name)));
        for b in &cell.buses {
            o.push_str(&format!("BUS {}\n", quote(b)));
        }
        for p in &cell.ports {
            o.push_str(&format!(
                "PORT {} {} {} {}\n",
                quote(&p.name),
                p.at.x,
                p.at.y,
                p.dir.keyword()
            ));
        }
        for sheet in &cell.sheets {
            o.push_str(&format!("PAGE {}\n", sheet.page));
            for inst in &sheet.instances {
                o.push_str(&format!(
                    "INST {} {} {} {} {} {} {}\n",
                    quote(&inst.name),
                    quote(&inst.symbol.library),
                    quote(&inst.symbol.cell),
                    quote(&inst.symbol.view),
                    inst.place.origin.x,
                    inst.place.origin.y,
                    inst.place.orient.code()
                ));
                for (k, v) in inst.props.iter() {
                    o.push_str(&format!(
                        "PROP {} {} {}\n",
                        quote(&inst.name),
                        quote(k),
                        quote(&v.to_text())
                    ));
                }
            }
            for wire in &sheet.wires {
                o.push_str(&format!("WIRE {}", wire.points.len()));
                for p in &wire.points {
                    o.push_str(&format!(" {} {}", p.x, p.y));
                }
                if let Some(l) = &wire.label {
                    let (normalized, postfix) = normalize_name(&l.text, &cell.buses, rules.bus)
                        .map_err(|e| format!("{name} p{}: `{}`: {e}", sheet.page, l.text))?;
                    o.push_str(&format!(
                        " NET {} {} {}",
                        quote(&normalized),
                        l.at.x,
                        l.at.y
                    ));
                    if let Some(c) = postfix {
                        o.push_str(&format!(" POSTFIX {c}"));
                    }
                }
                o.push('\n');
            }
            for c in &sheet.connectors {
                let (normalized, _) = normalize_name(&c.name, &cell.buses, rules.bus)
                    .map_err(|e| format!("{name} p{}: `{}`: {e}", sheet.page, c.name))?;
                o.push_str(&format!(
                    "CONN {} {} {} {} {}\n",
                    c.kind.keyword(),
                    quote(&normalized),
                    c.at.x,
                    c.at.y,
                    c.orient.code()
                ));
            }
            for t in &sheet.annotations {
                o.push_str(&format!("NOTE {} {} {}\n", quote(&t.text), t.at.x, t.at.y));
            }
            o.push_str("ENDPAGE\n");
        }
        o.push_str("ENDCELL\n");
    }
    o.push_str("END\n");
    Ok(o)
}

/// Imports neutral text into a design drawn for `target`. Labels take
/// the target dialect's font; postfix attributes are re-attached when
/// the target grammar supports them, folded into the base name (`_n`
/// suffix) otherwise.
///
/// # Errors
///
/// Returns [`ParseNeutralError`] with line numbers on malformed input.
pub fn import(text: &str, target: DialectId) -> Result<Design, ParseNeutralError> {
    let rules = DialectRules::for_id(target);
    let mut design = Design::new("", target);
    let mut cur_lib: Option<Library> = None;
    let mut cur_sym: Option<SymbolDef> = None;
    let mut cur_cell: Option<CellSchematic> = None;
    let mut cur_sheet: Option<Sheet> = None;
    let mut top = String::new();

    let tokenize = |line: &str| -> Vec<String> {
        // Shares the Viewstar token grammar (quoted strings with "" escapes).
        let mut out = Vec::new();
        let mut chars = line.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c == '"' {
                chars.next();
                let mut tok = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                tok.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(ch) => tok.push(ch),
                        None => break,
                    }
                }
                out.push(tok);
            } else {
                let mut tok = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() {
                        break;
                    }
                    tok.push(ch);
                    chars.next();
                }
                out.push(tok);
            }
        }
        out
    };

    let err = |line: usize, message: String| ParseNeutralError { line, message };
    let int = |line: usize, t: &str| -> Result<i64, ParseNeutralError> {
        t.parse::<i64>()
            .map_err(|_| err(line, format!("expected integer, got `{t}`")))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let toks = tokenize(raw);
        if toks.is_empty() {
            continue;
        }
        let need = |n: usize| -> Result<(), ParseNeutralError> {
            if toks.len() > n {
                Ok(())
            } else {
                Err(err(line, format!("record `{}` truncated", toks[0])))
            }
        };
        match toks[0].as_str() {
            "NEUTRAL" | "END" => {}
            "DESIGN" => {
                need(1)?;
                design.name = toks[1].clone();
            }
            "TOP" => {
                need(1)?;
                top = toks[1].clone();
            }
            "GLOBAL" => {
                need(1)?;
                design.add_global(toks[1].clone());
            }
            "LIBRARY" => {
                need(1)?;
                cur_lib = Some(Library::new(toks[1].clone()));
            }
            "ENDLIBRARY" => {
                let lib = cur_lib
                    .take()
                    .ok_or_else(|| err(line, "ENDLIBRARY without LIBRARY".into()))?;
                design.add_library(lib);
            }
            "SYMBOL" => {
                need(4)?;
                let lib = cur_lib
                    .as_ref()
                    .ok_or_else(|| err(line, "SYMBOL outside LIBRARY".into()))?;
                cur_sym = Some(SymbolDef::new(
                    SymbolRef::new(lib.name.clone(), toks[1].as_str(), toks[2].as_str()),
                    int(line, &toks[4])?,
                ));
            }
            "ENDSYMBOL" => {
                let sym = cur_sym
                    .take()
                    .ok_or_else(|| err(line, "ENDSYMBOL without SYMBOL".into()))?;
                cur_lib
                    .as_mut()
                    .ok_or_else(|| err(line, "ENDSYMBOL outside LIBRARY".into()))?
                    .add(sym);
            }
            "PIN" => {
                need(4)?;
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| err(line, "PIN outside SYMBOL".into()))?;
                let dir = PinDir::parse(&toks[4])
                    .ok_or_else(|| err(line, format!("bad direction `{}`", toks[4])))?;
                sym.pins.push(SymbolPin::new(
                    toks[1].as_str(),
                    Point::new(int(line, &toks[2])?, int(line, &toks[3])?),
                    dir,
                ));
            }
            "BODY" => {
                need(4)?;
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| err(line, "BODY outside SYMBOL".into()))?;
                sym.body.push((
                    Point::new(int(line, &toks[1])?, int(line, &toks[2])?),
                    Point::new(int(line, &toks[3])?, int(line, &toks[4])?),
                ));
            }
            "SPROP" => {
                need(2)?;
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| err(line, "SPROP outside SYMBOL".into()))?;
                sym.default_props
                    .set(toks[1].as_str(), PropValue::from_text(&toks[2]));
            }
            "CELL" => {
                need(1)?;
                cur_cell = Some(CellSchematic::new(toks[1].clone()));
            }
            "ENDCELL" => {
                let cell = cur_cell
                    .take()
                    .ok_or_else(|| err(line, "ENDCELL without CELL".into()))?;
                design.add_cell(cell);
            }
            "BUS" => {
                need(1)?;
                cur_cell
                    .as_mut()
                    .ok_or_else(|| err(line, "BUS outside CELL".into()))?
                    .buses
                    .insert(toks[1].as_str().into());
            }
            "PORT" => {
                need(4)?;
                let cell = cur_cell
                    .as_mut()
                    .ok_or_else(|| err(line, "PORT outside CELL".into()))?;
                let dir = PinDir::parse(&toks[4])
                    .ok_or_else(|| err(line, format!("bad direction `{}`", toks[4])))?;
                cell.ports.push(SymbolPin::new(
                    toks[1].as_str(),
                    Point::new(int(line, &toks[2])?, int(line, &toks[3])?),
                    dir,
                ));
            }
            "PAGE" => {
                need(1)?;
                cur_sheet = Some(Sheet::new(int(line, &toks[1])? as u32));
            }
            "ENDPAGE" => {
                let sheet = cur_sheet
                    .take()
                    .ok_or_else(|| err(line, "ENDPAGE without PAGE".into()))?;
                cur_cell
                    .as_mut()
                    .ok_or_else(|| err(line, "ENDPAGE outside CELL".into()))?
                    .sheets
                    .push(sheet);
            }
            "INST" => {
                need(7)?;
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| err(line, "INST outside PAGE".into()))?;
                let orient = crate::geom::Orient::parse(&toks[7])
                    .ok_or_else(|| err(line, format!("bad orientation `{}`", toks[7])))?;
                sheet.instances.push(Instance::new(
                    toks[1].as_str(),
                    SymbolRef::new(toks[2].as_str(), toks[3].as_str(), toks[4].as_str()),
                    Point::new(int(line, &toks[5])?, int(line, &toks[6])?),
                    orient,
                ));
            }
            "PROP" => {
                need(3)?;
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| err(line, "PROP outside PAGE".into()))?;
                let inst = sheet
                    .instances
                    .iter_mut()
                    .find(|i| i.name == toks[1])
                    .ok_or_else(|| err(line, format!("PROP for unknown instance `{}`", toks[1])))?;
                inst.props
                    .set(toks[2].as_str(), PropValue::from_text(&toks[3]));
            }
            "WIRE" => {
                need(1)?;
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| err(line, "WIRE outside PAGE".into()))?;
                let n = int(line, &toks[1])? as usize;
                if n < 2 || toks.len() < 2 + 2 * n {
                    return Err(err(line, "WIRE needs at least 2 points".into()));
                }
                let mut pts = Vec::with_capacity(n);
                for k in 0..n {
                    pts.push(Point::new(
                        int(line, &toks[2 + 2 * k])?,
                        int(line, &toks[3 + 2 * k])?,
                    ));
                }
                let mut wire = Wire::new(pts);
                let mut rest = 2 + 2 * n;
                if rest < toks.len() && toks[rest] == "NET" {
                    if toks.len() < rest + 4 {
                        return Err(err(line, "NET attribute truncated".into()));
                    }
                    let mut name = toks[rest + 1].clone();
                    let at = Point::new(int(line, &toks[rest + 2])?, int(line, &toks[rest + 3])?);
                    rest += 4;
                    if rest + 1 < toks.len() && toks[rest] == "POSTFIX" {
                        let c = toks[rest + 1]
                            .chars()
                            .next()
                            .ok_or_else(|| err(line, "empty POSTFIX".into()))?;
                        // Re-attach when the target grammar can express
                        // it; fold into the base otherwise.
                        if rules.bus == BusSyntax::Viewstar {
                            name.push(c);
                        } else {
                            name = fold_postfix(&name, c);
                        }
                    }
                    wire = wire.with_label(Label::new(name, at, rules.font));
                }
                sheet.wires.push(wire);
            }
            "CONN" => {
                need(5)?;
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| err(line, "CONN outside PAGE".into()))?;
                let kind = ConnectorKind::parse(&toks[1])
                    .ok_or_else(|| err(line, format!("bad connector `{}`", toks[1])))?;
                let orient = crate::geom::Orient::parse(&toks[5])
                    .ok_or_else(|| err(line, format!("bad orientation `{}`", toks[5])))?;
                let mut conn = Connector::new(
                    kind,
                    toks[2].as_str(),
                    Point::new(int(line, &toks[3])?, int(line, &toks[4])?),
                );
                conn.orient = orient;
                sheet.connectors.push(conn);
            }
            "NOTE" => {
                need(3)?;
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| err(line, "NOTE outside PAGE".into()))?;
                sheet.annotations.push(Label::new(
                    toks[1].as_str(),
                    Point::new(int(line, &toks[2])?, int(line, &toks[3])?),
                    rules.font,
                ));
            }
            other => return Err(err(line, format!("unknown record `{other}`"))),
        }
    }
    if !top.is_empty() {
        design.set_top(top);
    }
    Ok(design)
}

/// Folds a postfix indicator into a base name for grammars that cannot
/// carry it (`rst` + `-` → `rst_n`).
fn fold_postfix(name: &str, c: char) -> String {
    let suffix = match c {
        '-' => "_n",
        '*' => "_s",
        '+' => "_p",
        '~' => "_t",
        _ => "_x",
    };
    match name.find('<') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// The translator-count argument for a neutral format: direct pairwise
/// translation needs `n·(n-1)` converters; a neutral hub needs `2·n`.
pub fn translator_counts(n_tools: usize) -> (usize, usize) {
    (n_tools * n_tools.saturating_sub(1), 2 * n_tools)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::extract_design;
    use crate::gen::{generate, GenConfig};
    use crate::netlist::compare;

    #[test]
    fn viewstar_exports_and_reimports_with_connectivity_preserved() {
        let design = generate(&GenConfig::default());
        let text = export(&design).expect("exports");
        let back = import(&text, DialectId::Viewstar).expect("imports");
        let rules = DialectRules::viewstar();
        let (a, ea) = extract_design(&design, &rules);
        let (b, eb) = extract_design(&back, &rules);
        assert!(ea.is_empty() && eb.is_empty(), "{ea:?} {eb:?}");
        let report = compare(&a, &b);
        assert!(
            report.is_equivalent(),
            "{:?}",
            &report.diffs[..report.diffs.len().min(6)]
        );
    }

    #[test]
    fn neutral_normalizes_condensed_and_postfix_names() {
        let design = generate(&GenConfig::default());
        let text = export(&design).expect("exports");
        // Condensed taps were normalized to explicit syntax.
        assert!(text.contains("D<1>"), "condensed D1 normalized");
        // Postfix indicators travel as attributes, not name characters.
        assert!(text.contains("POSTFIX -"));
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("WIRE") {
                assert!(!rest.contains(">-"), "raw postfix leaked: {line}");
            }
        }
    }

    #[test]
    fn postfix_folding_into_cascade_names() {
        assert_eq!(fold_postfix("rst", '-'), "rst_n");
        assert_eq!(fold_postfix("bus<0:3>", '-'), "bus_n<0:3>");
        assert_eq!(fold_postfix("q", '*'), "q_s");
    }

    #[test]
    fn import_errors_carry_line_numbers() {
        assert!(
            import("NEUTRAL 1\nBOGUS x\n", DialectId::Cascade)
                .unwrap_err()
                .line
                == 2
        );
        assert!(import("CELL c\nPAGE 1\nWIRE 1 0 0\n", DialectId::Cascade).is_err());
    }

    #[test]
    fn translator_count_crossover() {
        // 3 tools: 6 direct vs 6 via hub — break-even.
        assert_eq!(translator_counts(3), (6, 6));
        // 10 tools: 90 vs 20 — the standardization argument.
        assert_eq!(translator_counts(10), (90, 20));
        assert_eq!(translator_counts(0), (0, 0));
    }
}
