//! The Cascade on-disk schematic format: an s-expression database in the
//! style of Lisp-scripted frameworks.
//!
//! ```text
//! (cascade 1
//!  (design "adder") (top "top") (global "VDD")
//!  (library "stdlib"
//!   (symbol "inv" "symbol" (grid 10)
//!    (pin "A" (at 0 0) (dir input))))
//!  (cell "top"
//!   (page 1
//!    (inst "I1" (of "stdlib" "inv" "symbol") (at 0 0) (orient R0)))))
//! ```

use crate::design::{CellSchematic, Design, Library};
use crate::dialect::DialectId;
use crate::geom::{Orient, Point};
use crate::parse::ParseError;
use crate::property::{FontMetrics, Label, PropValue};
use crate::sheet::{Connector, ConnectorKind, Instance, Sheet, Wire};
use crate::symbol::{PinDir, SymbolDef, SymbolPin, SymbolRef};

/// Former Cascade-specific error type, now the shared [`ParseError`].
#[deprecated(note = "use `schematic::ParseError`")]
pub type ParseCascadeError = ParseError;

/// A structural error after lexing; the record context goes in the
/// message since s-expression positions are not tracked past the lexer.
fn perr(message: impl Into<String>) -> ParseError {
    ParseError::new("cascade", message)
}

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
enum Sx {
    Atom(String),
    Str(String),
    Int(i64),
    List(Vec<Sx>),
}

impl Sx {
    fn tag(&self) -> Option<&str> {
        match self {
            Sx::List(items) => match items.first() {
                Some(Sx::Atom(a)) => Some(a.as_str()),
                _ => None,
            },
            _ => None,
        }
    }
    fn items(&self) -> &[Sx] {
        match self {
            Sx::List(items) => items,
            _ => &[],
        }
    }
    fn as_str(&self) -> Result<&str, ParseError> {
        match self {
            Sx::Atom(s) | Sx::Str(s) => Ok(s),
            other => Err(perr(format!("expected string, got {other:?}"))),
        }
    }
    fn as_int(&self) -> Result<i64, ParseError> {
        match self {
            Sx::Int(i) => Ok(*i),
            other => Err(perr(format!("expected integer, got {other:?}"))),
        }
    }
}

/// Char stream that tracks 1-based line/column for lexer errors.
struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        c
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::at("cascade", message, self.line, self.col)
    }
}

/// One open list under construction, remembering where its `(` was so
/// an unclosed paren can be reported at its source position.
struct Frame {
    items: Vec<Sx>,
    open: (usize, usize),
}

fn lex_parse(text: &str) -> Result<Vec<Sx>, ParseError> {
    let mut lx = Lexer::new(text);
    let mut stack: Vec<Frame> = vec![Frame {
        items: Vec::new(),
        open: (1, 1),
    }];
    while let Some(c) = lx.peek() {
        match c {
            '(' => {
                let open = (lx.line, lx.col);
                lx.bump();
                stack.push(Frame {
                    items: Vec::new(),
                    open,
                });
            }
            ')' => {
                if stack.len() < 2 {
                    return Err(lx.err("unbalanced `)`"));
                }
                lx.bump();
                let done = stack.pop().expect("checked depth").items;
                stack
                    .last_mut()
                    .expect("checked depth")
                    .items
                    .push(Sx::List(done));
            }
            '"' => {
                let open = (lx.line, lx.col);
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        Some('\\') => match lx.bump() {
                            Some('n') => s.push('\n'),
                            Some(ch) => s.push(ch),
                            None => {
                                return Err(ParseError::at(
                                    "cascade",
                                    "unterminated string",
                                    open.0,
                                    open.1,
                                ))
                            }
                        },
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(ParseError::at(
                                "cascade",
                                "unterminated string",
                                open.0,
                                open.1,
                            ))
                        }
                    }
                }
                stack
                    .last_mut()
                    .expect("stack nonempty")
                    .items
                    .push(Sx::Str(s));
            }
            ';' => {
                // Comment to end of line.
                while let Some(ch) = lx.bump() {
                    if ch == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                lx.bump();
            }
            _ => {
                let mut tok = String::new();
                while let Some(ch) = lx.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == '"' {
                        break;
                    }
                    tok.push(ch);
                    lx.bump();
                }
                let sx = match tok.parse::<i64>() {
                    Ok(i) => Sx::Int(i),
                    Err(_) => Sx::Atom(tok),
                };
                stack.last_mut().expect("stack nonempty").items.push(sx);
            }
        }
    }
    if stack.len() != 1 {
        let unclosed = stack.last().expect("stack nonempty").open;
        return Err(ParseError::at(
            "cascade",
            "unbalanced `(`",
            unclosed.0,
            unclosed.1,
        ));
    }
    Ok(stack.pop().expect("single frame").items)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a design to Cascade text.
pub fn write(design: &Design) -> String {
    let mut o = String::new();
    o.push_str("(cascade 1\n");
    o.push_str(&format!(" (design {})\n", esc(&design.name)));
    o.push_str(&format!(" (top {})\n", esc(&design.top)));
    for g in design.globals() {
        o.push_str(&format!(" (global {})\n", esc(g)));
    }
    for lib in design.libraries() {
        o.push_str(&format!(" (library {}\n", esc(&lib.name)));
        for sym in lib.iter() {
            o.push_str(&format!(
                "  (symbol {} {} (grid {})\n",
                esc(&sym.reference.cell),
                esc(&sym.reference.view),
                sym.grid
            ));
            for p in &sym.pins {
                o.push_str(&format!(
                    "   (pin {} (at {} {}) (dir {}))\n",
                    esc(&p.name),
                    p.at.x,
                    p.at.y,
                    p.dir.keyword()
                ));
            }
            for (a, b) in &sym.body {
                o.push_str(&format!("   (body {} {} {} {})\n", a.x, a.y, b.x, b.y));
            }
            for (k, v) in sym.default_props.iter() {
                o.push_str(&format!("   (prop {} {})\n", esc(k), esc(&v.to_text())));
            }
            o.push_str("  )\n");
        }
        o.push_str(" )\n");
    }
    for (name, cell) in design.cells() {
        o.push_str(&format!(" (cell {}\n", esc(name)));
        for b in &cell.buses {
            o.push_str(&format!("  (bus {})\n", esc(b)));
        }
        for p in &cell.ports {
            o.push_str(&format!(
                "  (port {} (at {} {}) (dir {}))\n",
                esc(&p.name),
                p.at.x,
                p.at.y,
                p.dir.keyword()
            ));
        }
        for sheet in &cell.sheets {
            o.push_str(&format!("  (page {}\n", sheet.page));
            for inst in &sheet.instances {
                o.push_str(&format!(
                    "   (inst {} (of {} {} {}) (at {} {}) (orient {})",
                    esc(&inst.name),
                    esc(&inst.symbol.library),
                    esc(&inst.symbol.cell),
                    esc(&inst.symbol.view),
                    inst.place.origin.x,
                    inst.place.origin.y,
                    inst.place.orient.code()
                ));
                for (k, v) in inst.props.iter() {
                    o.push_str(&format!(" (prop {} {})", esc(k), esc(&v.to_text())));
                }
                o.push_str(")\n");
            }
            for w in &sheet.wires {
                o.push_str("   (wire (pts");
                for p in &w.points {
                    o.push_str(&format!(" {} {}", p.x, p.y));
                }
                o.push(')');
                if let Some(l) = &w.label {
                    o.push_str(&format!(
                        " (label {} (at {} {}))",
                        esc(&l.text),
                        l.at.x,
                        l.at.y
                    ));
                }
                o.push_str(")\n");
            }
            for c in &sheet.connectors {
                o.push_str(&format!(
                    "   (conn {} {} (at {} {}) (orient {}))\n",
                    c.kind.keyword(),
                    esc(&c.name),
                    c.at.x,
                    c.at.y,
                    c.orient.code()
                ));
            }
            for t in &sheet.annotations {
                o.push_str(&format!(
                    "   (text {} (at {} {}))\n",
                    esc(&t.text),
                    t.at.x,
                    t.at.y
                ));
            }
            o.push_str("  )\n");
        }
        o.push_str(" )\n");
    }
    o.push_str(")\n");
    o
}

fn find<'a>(items: &'a [Sx], tag: &str) -> Option<&'a Sx> {
    items.iter().find(|s| s.tag() == Some(tag))
}

fn find_all<'a>(items: &'a [Sx], tag: &'a str) -> impl Iterator<Item = &'a Sx> {
    items.iter().filter(move |s| s.tag() == Some(tag))
}

fn get_at(items: &[Sx]) -> Result<Point, ParseError> {
    let at = find(items, "at").ok_or_else(|| perr("missing (at ...)"))?;
    let it = at.items();
    if it.len() != 3 {
        return Err(perr("(at x y) needs two coordinates"));
    }
    Ok(Point::new(it[1].as_int()?, it[2].as_int()?))
}

fn get_orient(items: &[Sx]) -> Result<Orient, ParseError> {
    match find(items, "orient") {
        Some(o) => {
            let code = o.items().get(1).map(|s| s.as_str()).transpose()?;
            let code = code.ok_or_else(|| perr("empty (orient)"))?;
            Orient::parse(code).ok_or_else(|| perr(format!("bad orientation `{code}`")))
        }
        None => Ok(Orient::R0),
    }
}

fn get_dir(items: &[Sx]) -> Result<PinDir, ParseError> {
    let d = find(items, "dir").ok_or_else(|| perr("missing (dir ...)"))?;
    let kw = d
        .items()
        .get(1)
        .ok_or_else(|| perr("empty (dir)"))?
        .as_str()?;
    PinDir::parse(kw).ok_or_else(|| perr(format!("bad direction `{kw}`")))
}

/// Parses Cascade text into a [`Design`].
///
/// # Errors
///
/// Returns the first structural error encountered.
pub fn parse(text: &str) -> Result<Design, ParseError> {
    parse_inner(text)
}

/// Like [`parse`], but traced: emits a `schematic.parse` span (dialect
/// and design-size attributes), a `schematic.parse.objects` counter,
/// and a `schematic.parse.error` event with the source position on
/// failure.
///
/// # Errors
///
/// Returns the first structural error encountered.
pub fn parse_recorded(text: &str, recorder: &dyn obs::Recorder) -> Result<Design, ParseError> {
    crate::parse::traced_parse(text, "cascade", recorder, parse_inner)
}

fn parse_inner(text: &str) -> Result<Design, ParseError> {
    let top_forms = lex_parse(text)?;
    let root = top_forms
        .iter()
        .find(|f| f.tag() == Some("cascade"))
        .ok_or_else(|| perr("no (cascade ...) form"))?;
    let mut design = Design::new("", DialectId::Cascade);
    let font = FontMetrics::CASCADE;
    let mut top = String::new();

    for form in &root.items()[1..] {
        match form.tag() {
            Some("design") => {
                design.name = form.items()[1].as_str()?.to_string();
            }
            Some("top") => {
                top = form.items()[1].as_str()?.to_string();
            }
            Some("global") => {
                design.add_global(form.items()[1].as_str()?);
            }
            Some("library") => {
                let items = form.items();
                let mut lib = Library::new(items[1].as_str()?);
                for sform in find_all(items, "symbol") {
                    let si = sform.items();
                    let cell = si[1].as_str()?;
                    let view = si[2].as_str()?;
                    let grid = find(si, "grid")
                        .ok_or_else(|| perr("symbol missing (grid)"))?
                        .items()[1]
                        .as_int()?;
                    let mut sym =
                        SymbolDef::new(SymbolRef::new(lib.name.clone(), cell, view), grid);
                    for p in find_all(si, "pin") {
                        let pi = p.items();
                        sym.pins
                            .push(SymbolPin::new(pi[1].as_str()?, get_at(pi)?, get_dir(pi)?));
                    }
                    for b in find_all(si, "body") {
                        let bi = b.items();
                        if bi.len() != 5 {
                            return Err(perr("(body ax ay bx by)"));
                        }
                        sym.body.push((
                            Point::new(bi[1].as_int()?, bi[2].as_int()?),
                            Point::new(bi[3].as_int()?, bi[4].as_int()?),
                        ));
                    }
                    for pr in find_all(si, "prop") {
                        let pi = pr.items();
                        sym.default_props
                            .set(pi[1].as_str()?, PropValue::from_text(pi[2].as_str()?));
                    }
                    lib.add(sym);
                }
                design.add_library(lib);
            }
            Some("cell") => {
                let items = form.items();
                let mut cell = CellSchematic::new(items[1].as_str()?);
                for b in find_all(items, "bus") {
                    cell.buses.insert(b.items()[1].as_str()?.into());
                }
                for p in find_all(items, "port") {
                    let pi = p.items();
                    cell.ports
                        .push(SymbolPin::new(pi[1].as_str()?, get_at(pi)?, get_dir(pi)?));
                }
                for pform in find_all(items, "page") {
                    let pi = pform.items();
                    let page = pi[1].as_int()? as u32;
                    let mut sheet = Sheet::new(page);
                    for inst in find_all(pi, "inst") {
                        let ii = inst.items();
                        let name = ii[1].as_str()?;
                        let of = find(ii, "of").ok_or_else(|| perr("inst missing (of)"))?;
                        let oi = of.items();
                        let sref =
                            SymbolRef::new(oi[1].as_str()?, oi[2].as_str()?, oi[3].as_str()?);
                        let mut i = Instance::new(name, sref, get_at(ii)?, get_orient(ii)?);
                        for pr in find_all(ii, "prop") {
                            let pri = pr.items();
                            i.props
                                .set(pri[1].as_str()?, PropValue::from_text(pri[2].as_str()?));
                        }
                        sheet.instances.push(i);
                    }
                    for w in find_all(pi, "wire") {
                        let wi = w.items();
                        let pts = find(wi, "pts").ok_or_else(|| perr("wire missing (pts)"))?;
                        let coords = &pts.items()[1..];
                        if coords.len() < 4 || coords.len() % 2 != 0 {
                            return Err(perr("wire needs >= 2 points"));
                        }
                        let mut points = Vec::with_capacity(coords.len() / 2);
                        for pair in coords.chunks(2) {
                            points.push(Point::new(pair[0].as_int()?, pair[1].as_int()?));
                        }
                        let mut wire = Wire::new(points);
                        if let Some(l) = find(wi, "label") {
                            let li = l.items();
                            wire = wire.with_label(Label::new(li[1].as_str()?, get_at(li)?, font));
                        }
                        sheet.wires.push(wire);
                    }
                    for cform in find_all(pi, "conn") {
                        let ci = cform.items();
                        let kw = ci[1].as_str()?;
                        let kind = ConnectorKind::parse(kw)
                            .ok_or_else(|| perr(format!("bad connector kind `{kw}`")))?;
                        let mut conn = Connector::new(kind, ci[2].as_str()?, get_at(ci)?);
                        conn.orient = get_orient(ci)?;
                        sheet.connectors.push(conn);
                    }
                    for t in find_all(pi, "text") {
                        let ti = t.items();
                        sheet
                            .annotations
                            .push(Label::new(ti[1].as_str()?, get_at(ti)?, font));
                    }
                    cell.sheets.push(sheet);
                }
                design.add_cell(cell);
            }
            _ => {}
        }
    }
    if !top.is_empty() {
        design.set_top(top);
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Orient;

    fn sample() -> Design {
        let mut d = Design::new("adder", DialectId::Cascade);
        d.add_global("VDD");
        let mut lib = Library::new("stdlib");
        lib.add(
            SymbolDef::new(SymbolRef::new("stdlib", "inv", "symbol"), 10)
                .with_pin("A", Point::new(0, 0), PinDir::Input)
                .with_pin("Y", Point::new(40, 0), PinDir::Output)
                .with_body_segment(Point::new(10, -10), Point::new(10, 10)),
        );
        d.add_library(lib);
        let mut cell = CellSchematic::new("top");
        cell.buses.insert("D".into());
        cell.ports
            .push(SymbolPin::new("OUT", Point::new(0, 0), PinDir::Output));
        let mut s = Sheet::new(1);
        let mut inst = Instance::new(
            "I1",
            SymbolRef::new("stdlib", "inv", "symbol"),
            Point::new(100, 200),
            Orient::R270,
        );
        inst.props.set("SIZE", "x4");
        s.instances.push(inst);
        s.wires.push(
            Wire::new(vec![Point::new(0, 0), Point::new(40, 0)]).with_label(Label::new(
                "net \"a\"",
                Point::new(8, 4),
                FontMetrics::CASCADE,
            )),
        );
        s.connectors.push(Connector::new(
            ConnectorKind::HierOutput,
            "OUT",
            Point::new(40, 0),
        ));
        s.annotations.push(Label::new(
            "multi\nline",
            Point::new(0, 100),
            FontMetrics::CASCADE,
        ));
        cell.sheets.push(s);
        d.add_cell(cell);
        d.set_top("top");
        d
    }

    #[test]
    fn round_trip_preserves_design() {
        let d = sample();
        let text = write(&d);
        let back = parse(&text).expect("parse ok");
        assert_eq!(back, d);
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let text = "; header comment\n(cascade 1 (design \"x\") (top \"t\"))";
        let d = parse(text).unwrap();
        assert_eq!(d.name, "x");
    }

    #[test]
    fn unbalanced_parens_fail() {
        assert!(parse("(cascade 1 (design \"x\")").is_err());
        assert!(parse("(cascade 1))").is_err());
    }

    #[test]
    fn missing_root_form_fails() {
        assert!(parse("(viewstar 1)").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "say \"hi\"\\now";
        let text = format!("(cascade 1 (design {}))", esc(s));
        let d = parse(&text).unwrap();
        assert_eq!(d.name, s);
    }
}
