//! Net-name and bus-syntax grammar.
//!
//! The paper's Section 2 "Bus syntax translation" issue: Viewlogic allows
//! *condensed* syntax (`A0` ≡ bit 0 of bus `A<0:15>`) and postfix
//! indicators (`myBus<0:15>-`), while Cadence requires explicit syntax
//! (`A<0>`) and understands neither condensation nor postfixes. The two
//! dialects here — [`BusSyntax::Viewstar`] and [`BusSyntax::Cascade`] —
//! reproduce exactly that asymmetry.

use std::collections::BTreeSet;
use std::fmt;

use interop_core::intern::IStr;

/// A structured net reference: a scalar, one bit of a bus, or a bus range.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetExpr {
    /// A scalar net such as `CLK`.
    Scalar(String),
    /// A single bus bit such as `A<3>`.
    Bit(String, i64),
    /// A bus slice `base<from:to>`; either endpoint may be larger.
    Range(String, i64, i64),
}

impl NetExpr {
    /// The base identifier (`A` for `A<0:15>`).
    pub fn base(&self) -> &str {
        match self {
            NetExpr::Scalar(s) | NetExpr::Bit(s, _) | NetExpr::Range(s, _, _) => s,
        }
    }

    /// Number of individual bits this expression denotes.
    pub fn bit_count(&self) -> usize {
        match self {
            NetExpr::Scalar(_) | NetExpr::Bit(_, _) => 1,
            NetExpr::Range(_, a, b) => ((a - b).unsigned_abs() + 1) as usize,
        }
    }

    /// Expands to the individual bits, in declaration order. A scalar
    /// expands to itself.
    ///
    /// ```
    /// use schematic::bus::NetExpr;
    /// let bits = NetExpr::Range("A".into(), 1, 0).bits();
    /// assert_eq!(bits, vec![NetExpr::Bit("A".into(), 1), NetExpr::Bit("A".into(), 0)]);
    /// ```
    pub fn bits(&self) -> Vec<NetExpr> {
        match self {
            NetExpr::Scalar(_) | NetExpr::Bit(_, _) => vec![self.clone()],
            NetExpr::Range(b, from, to) => {
                let step: i64 = if from <= to { 1 } else { -1 };
                let mut out = Vec::with_capacity(self.bit_count());
                let mut i = *from;
                loop {
                    out.push(NetExpr::Bit(b.clone(), i));
                    if i == *to {
                        break;
                    }
                    i += step;
                }
                out
            }
        }
    }
}

/// A parsed net name: the structured expression plus an optional Viewstar
/// postfix indicator character.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetName {
    /// The structured reference.
    pub expr: NetExpr,
    /// A trailing indicator such as `-` (active low) permitted by the
    /// Viewstar grammar only. `None` for Cascade names.
    pub postfix: Option<char>,
}

impl NetName {
    /// A scalar net with no postfix.
    pub fn scalar(name: impl Into<String>) -> Self {
        NetName {
            expr: NetExpr::Scalar(name.into()),
            postfix: None,
        }
    }

    /// One bit of a bus.
    pub fn bit(base: impl Into<String>, idx: i64) -> Self {
        NetName {
            expr: NetExpr::Bit(base.into(), idx),
            postfix: None,
        }
    }

    /// A bus range.
    pub fn range(base: impl Into<String>, from: i64, to: i64) -> Self {
        NetName {
            expr: NetExpr::Range(base.into(), from, to),
            postfix: None,
        }
    }

    /// Returns the same name with a postfix indicator attached.
    pub fn with_postfix(mut self, c: char) -> Self {
        self.postfix = Some(c);
        self
    }
}

impl fmt::Display for NetName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&BusSyntax::Viewstar.format(self))
    }
}

/// Error parsing a net name under a dialect grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetError {
    /// The name was empty or contained no identifier.
    Empty,
    /// Malformed `<...>` index or range.
    BadIndex(String),
    /// A postfix indicator appeared under a grammar that forbids them.
    PostfixForbidden(String),
    /// Characters invalid in an identifier under this grammar.
    BadIdentifier(String),
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetError::Empty => write!(f, "empty net name"),
            ParseNetError::BadIndex(s) => write!(f, "malformed bus index in `{s}`"),
            ParseNetError::PostfixForbidden(s) => {
                write!(f, "postfix indicator not allowed in this dialect: `{s}`")
            }
            ParseNetError::BadIdentifier(s) => write!(f, "invalid identifier `{s}`"),
        }
    }
}

impl std::error::Error for ParseNetError {}

/// Postfix indicator characters the Viewstar grammar accepts.
pub const VIEWSTAR_POSTFIXES: &[char] = &['-', '*', '+', '~'];

/// The two bus-syntax grammars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusSyntax {
    /// Condensed syntax allowed, postfix indicators allowed.
    Viewstar,
    /// Explicit syntax only; `A0` is a scalar distinct from `A<0>`.
    Cascade,
}

impl BusSyntax {
    /// Parses `text` as a net name under this grammar.
    ///
    /// `known_buses` supplies scope context for Viewstar's condensed
    /// syntax: `A0` resolves to `A<0>` only when a bus with base `A` is in
    /// scope; otherwise it stays the scalar `A0`. Cascade ignores the set.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetError`] for empty names, malformed ranges,
    /// identifiers containing reserved punctuation, or (Cascade only)
    /// postfix indicators.
    pub fn parse(self, text: &str, known_buses: &BTreeSet<IStr>) -> Result<NetName, ParseNetError> {
        let text = text.trim();
        if text.is_empty() {
            return Err(ParseNetError::Empty);
        }

        // Split off a postfix indicator if the grammar permits one.
        let (body, postfix) = match text.chars().last() {
            Some(c) if VIEWSTAR_POSTFIXES.contains(&c) => match self {
                BusSyntax::Viewstar => (&text[..text.len() - c.len_utf8()], Some(c)),
                BusSyntax::Cascade => {
                    return Err(ParseNetError::PostfixForbidden(text.to_string()))
                }
            },
            _ => (text, None),
        };
        if body.is_empty() {
            return Err(ParseNetError::Empty);
        }

        let expr = if let Some(open) = body.find('<') {
            let Some(stripped) = body.ends_with('>').then(|| &body[open + 1..body.len() - 1])
            else {
                return Err(ParseNetError::BadIndex(body.to_string()));
            };
            let base = &body[..open];
            Self::check_ident(base)?;
            if let Some((a, b)) = stripped.split_once(':') {
                let from = a
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| ParseNetError::BadIndex(body.to_string()))?;
                let to = b
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| ParseNetError::BadIndex(body.to_string()))?;
                NetExpr::Range(base.to_string(), from, to)
            } else {
                let idx = stripped
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| ParseNetError::BadIndex(body.to_string()))?;
                NetExpr::Bit(base.to_string(), idx)
            }
        } else {
            Self::check_ident(body)?;
            match self {
                BusSyntax::Viewstar => Self::condense(body, known_buses),
                BusSyntax::Cascade => NetExpr::Scalar(body.to_string()),
            }
        };

        Ok(NetName { expr, postfix })
    }

    /// Formats a net name under this grammar.
    ///
    /// Under Cascade, a postfix indicator is folded into the identifier
    /// (dropped from display) because the grammar cannot express it — the
    /// migration engine is responsible for renaming before formatting.
    pub fn format(self, name: &NetName) -> String {
        let mut s = match &name.expr {
            NetExpr::Scalar(b) => b.clone(),
            NetExpr::Bit(b, i) => format!("{b}<{i}>"),
            NetExpr::Range(b, f, t) => format!("{b}<{f}:{t}>"),
        };
        if let (BusSyntax::Viewstar, Some(c)) = (self, name.postfix) {
            s.push(c);
        }
        s
    }

    /// True when this grammar can express `name` without loss.
    pub fn can_express(self, name: &NetName) -> bool {
        match self {
            BusSyntax::Viewstar => true,
            BusSyntax::Cascade => name.postfix.is_none(),
        }
    }

    fn check_ident(s: &str) -> Result<(), ParseNetError> {
        if s.is_empty() {
            return Err(ParseNetError::Empty);
        }
        // A single trailing `!` marks a global net (the `vdd!`
        // convention) and is part of the identifier in both grammars.
        let s_body = s.strip_suffix('!').unwrap_or(s);
        if s_body.is_empty() {
            return Err(ParseNetError::BadIdentifier(s.to_string()));
        }
        let mut chars = s_body.chars();
        let first = chars.next().expect("nonempty");
        let head_ok = first.is_ascii_alphabetic() || first == '_';
        let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
        if head_ok && tail_ok {
            Ok(())
        } else {
            Err(ParseNetError::BadIdentifier(s.to_string()))
        }
    }

    /// Viewstar condensed resolution: `A0` ≡ `A<0>` when bus `A` is in
    /// scope. The digits must form a maximal numeric suffix.
    fn condense(body: &str, known_buses: &BTreeSet<IStr>) -> NetExpr {
        let digits_at = body
            .char_indices()
            .rev()
            .take_while(|(_, c)| c.is_ascii_digit())
            .last()
            .map(|(i, _)| i);
        if let Some(i) = digits_at {
            if i > 0 {
                let (base, digits) = body.split_at(i);
                if known_buses.contains(base) {
                    if let Ok(idx) = digits.parse::<i64>() {
                        return NetExpr::Bit(base.to_string(), idx);
                    }
                }
            }
        }
        NetExpr::Scalar(body.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buses(names: &[&str]) -> BTreeSet<IStr> {
        names.iter().map(|s| IStr::from(*s)).collect()
    }

    #[test]
    fn explicit_bit_and_range_parse_in_both_dialects() {
        for syn in [BusSyntax::Viewstar, BusSyntax::Cascade] {
            let n = syn.parse("A<3>", &buses(&[])).unwrap();
            assert_eq!(n.expr, NetExpr::Bit("A".into(), 3));
            let r = syn.parse("DATA<0:15>", &buses(&[])).unwrap();
            assert_eq!(r.expr, NetExpr::Range("DATA".into(), 0, 15));
        }
    }

    #[test]
    fn condensed_syntax_resolves_only_in_viewstar_with_bus_in_scope() {
        let scope = buses(&["A"]);
        let v = BusSyntax::Viewstar.parse("A0", &scope).unwrap();
        assert_eq!(v.expr, NetExpr::Bit("A".into(), 0));
        // Without the bus in scope, A0 stays scalar.
        let v2 = BusSyntax::Viewstar.parse("A0", &buses(&[])).unwrap();
        assert_eq!(v2.expr, NetExpr::Scalar("A0".into()));
        // Cascade never condenses: A0 is a distinct scalar.
        let c = BusSyntax::Cascade.parse("A0", &scope).unwrap();
        assert_eq!(c.expr, NetExpr::Scalar("A0".into()));
    }

    #[test]
    fn postfix_indicators_only_in_viewstar() {
        let v = BusSyntax::Viewstar
            .parse("myBus<0:15>-", &buses(&[]))
            .unwrap();
        assert_eq!(v.postfix, Some('-'));
        assert_eq!(v.expr, NetExpr::Range("myBus".into(), 0, 15));
        let err = BusSyntax::Cascade
            .parse("myBus<0:15>-", &buses(&[]))
            .unwrap_err();
        assert!(matches!(err, ParseNetError::PostfixForbidden(_)));
    }

    #[test]
    fn format_round_trips() {
        let scope = buses(&["A"]);
        for text in ["CLK", "A<7>", "D<15:0>", "n_rst-"] {
            let n = BusSyntax::Viewstar.parse(text, &scope).unwrap();
            assert_eq!(BusSyntax::Viewstar.format(&n), text);
        }
    }

    #[test]
    fn range_bit_expansion_handles_both_directions() {
        let up = NetExpr::Range("A".into(), 0, 2);
        assert_eq!(
            up.bits(),
            vec![
                NetExpr::Bit("A".into(), 0),
                NetExpr::Bit("A".into(), 1),
                NetExpr::Bit("A".into(), 2)
            ]
        );
        let down = NetExpr::Range("A".into(), 2, 0);
        assert_eq!(down.bit_count(), 3);
        assert_eq!(down.bits()[0], NetExpr::Bit("A".into(), 2));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let empty = BTreeSet::new();
        assert!(BusSyntax::Cascade.parse("", &empty).is_err());
        assert!(BusSyntax::Cascade.parse("A<", &empty).is_err());
        assert!(BusSyntax::Cascade.parse("A<x>", &empty).is_err());
        assert!(BusSyntax::Cascade.parse("9net", &empty).is_err());
        assert!(BusSyntax::Viewstar.parse("-", &empty).is_err());
    }

    #[test]
    fn cascade_cannot_express_postfixed_names() {
        let n = NetName::range("b", 0, 3).with_postfix('-');
        assert!(BusSyntax::Viewstar.can_express(&n));
        assert!(!BusSyntax::Cascade.can_express(&n));
    }
}
