//! Dialect rule tables and conformance checking.
//!
//! A *dialect* bundles every tool-specific convention Section 2 of the
//! paper lists: grid pitch, pin pitch, bus-syntax grammar, font metrics,
//! implicit-vs-explicit page connection, and connector requirements.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use interop_core::intern::IStr;

use crate::bus::BusSyntax;
use crate::design::Design;
use crate::property::FontMetrics;
use crate::sheet::ConnectorKind;

/// Identifies one of the two built-in schematic dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DialectId {
    /// The Viewlogic-Viewdraw-like source dialect.
    Viewstar,
    /// The Cadence-Composer-like target dialect.
    Cascade,
}

impl fmt::Display for DialectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DialectId::Viewstar => f.write_str("viewstar"),
            DialectId::Cascade => f.write_str("cascade"),
        }
    }
}

/// The complete convention table for one dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectRules {
    /// Which dialect this is.
    pub id: DialectId,
    /// Drawing grid pitch in DBU.
    pub grid: i64,
    /// Required pin-to-pin pitch for library symbols in DBU.
    pub pin_pitch: i64,
    /// Bus-syntax grammar.
    pub bus: BusSyntax,
    /// Font used for labels.
    pub font: FontMetrics,
    /// True when same-named nets join across pages implicitly.
    pub implicit_page_nets: bool,
    /// True when nets spanning pages must carry off-page connectors.
    pub requires_offpage_connectors: bool,
    /// True when hierarchy ports must be marked with hierarchy connectors.
    pub requires_hier_connectors: bool,
}

impl DialectRules {
    /// The Viewstar rule table: 1/10-inch grid, 2/10-inch pin pitch,
    /// condensed bus syntax, implicit page connection, optional
    /// connectors, small offset-origin font.
    pub fn viewstar() -> Self {
        DialectRules {
            id: DialectId::Viewstar,
            grid: 16,      // 1/10 inch in DBU (160 DBU per inch)
            pin_pitch: 32, // 2/10 inch
            bus: BusSyntax::Viewstar,
            font: FontMetrics::VIEWSTAR,
            implicit_page_nets: true,
            requires_offpage_connectors: false,
            requires_hier_connectors: false,
        }
    }

    /// The Cascade rule table: 1/16-inch grid, 2/16-inch pin pitch,
    /// explicit bus syntax, explicit page connection via off-page
    /// connectors, mandatory hierarchy connectors, baseline font.
    pub fn cascade() -> Self {
        DialectRules {
            id: DialectId::Cascade,
            grid: 10,      // 1/16 inch in DBU
            pin_pitch: 20, // 2/16 inch
            bus: BusSyntax::Cascade,
            font: FontMetrics::CASCADE,
            implicit_page_nets: false,
            requires_offpage_connectors: true,
            requires_hier_connectors: true,
        }
    }

    /// Looks up the rule table for an id.
    pub fn for_id(id: DialectId) -> Self {
        match id {
            DialectId::Viewstar => Self::viewstar(),
            DialectId::Cascade => Self::cascade(),
        }
    }

    /// The exact rational scale factor `(num, den)` converting geometry
    /// from this dialect's grid to `target`'s grid.
    pub fn scale_to(&self, target: &DialectRules) -> (i64, i64) {
        // pin_pitch_src * num/den == pin_pitch_dst
        let g = gcd(target.pin_pitch, self.pin_pitch);
        (target.pin_pitch / g, self.pin_pitch / g)
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// A single conformance violation found by [`check_conformance`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An instance origin is off the dialect grid.
    OffGridInstance {
        /// Cell containing the instance.
        cell: String,
        /// Page number.
        page: u32,
        /// Instance name.
        inst: String,
    },
    /// A wire vertex is off the dialect grid.
    OffGridWire {
        /// Cell containing the wire.
        cell: String,
        /// Page number.
        page: u32,
        /// The offending vertex as `(x, y)`.
        at: (i64, i64),
    },
    /// A net label fails to parse under the dialect's bus grammar.
    BadNetName {
        /// Cell containing the label.
        cell: String,
        /// Page number.
        page: u32,
        /// Label text.
        name: String,
        /// Parser message.
        reason: String,
    },
    /// A net spans multiple pages without off-page connectors although
    /// the dialect requires them.
    MissingOffPage {
        /// Cell name.
        cell: String,
        /// Net name.
        net: String,
    },
    /// A hierarchy port has no hierarchy connector although the dialect
    /// requires one.
    MissingHierConnector {
        /// Cell name.
        cell: String,
        /// Port name.
        port: String,
    },
    /// A label uses font metrics other than the dialect's.
    WrongFont {
        /// Cell name.
        cell: String,
        /// Page number.
        page: u32,
        /// Label text.
        text: String,
    },
    /// An instance references a symbol that does not exist in any
    /// library of the design.
    DanglingSymbol {
        /// Cell name.
        cell: String,
        /// Instance name.
        inst: String,
        /// The unresolved reference, rendered as `lib/cell/view`.
        symbol: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OffGridInstance { cell, page, inst } => {
                write!(f, "{cell} p{page}: instance {inst} off grid")
            }
            Violation::OffGridWire { cell, page, at } => {
                write!(
                    f,
                    "{cell} p{page}: wire vertex ({},{}) off grid",
                    at.0, at.1
                )
            }
            Violation::BadNetName {
                cell,
                page,
                name,
                reason,
            } => write!(f, "{cell} p{page}: net name `{name}`: {reason}"),
            Violation::MissingOffPage { cell, net } => {
                write!(
                    f,
                    "{cell}: net `{net}` spans pages without off-page connectors"
                )
            }
            Violation::MissingHierConnector { cell, port } => {
                write!(f, "{cell}: port `{port}` lacks a hierarchy connector")
            }
            Violation::WrongFont { cell, page, text } => {
                write!(f, "{cell} p{page}: label `{text}` uses a foreign font")
            }
            Violation::DanglingSymbol { cell, inst, symbol } => {
                write!(
                    f,
                    "{cell}: instance {inst} references missing symbol {symbol}"
                )
            }
        }
    }
}

/// Checks a design against a dialect rule table, returning every
/// violation found. An empty result means the design is conformant —
/// the acceptance criterion the migration pipeline must meet.
pub fn check_conformance(design: &Design, rules: &DialectRules) -> Vec<Violation> {
    let mut out = Vec::new();

    for (cell_name, cell) in design.cells() {
        // Net-name labels per page, used for page-span analysis.
        let mut names_on_page: BTreeMap<IStr, BTreeSet<u32>> = BTreeMap::new();
        let mut offpage_names: BTreeSet<IStr> = BTreeSet::new();
        let mut hier_names: BTreeSet<IStr> = BTreeSet::new();

        for sheet in &cell.sheets {
            for inst in &sheet.instances {
                if !inst.place.origin.on_grid(rules.grid) {
                    out.push(Violation::OffGridInstance {
                        cell: cell_name.to_string(),
                        page: sheet.page,
                        inst: inst.name.as_str().to_string(),
                    });
                }
                if design.resolve_symbol(&inst.symbol).is_none() {
                    out.push(Violation::DanglingSymbol {
                        cell: cell_name.to_string(),
                        inst: inst.name.as_str().to_string(),
                        symbol: inst.symbol.to_string(),
                    });
                }
            }
            for wire in &sheet.wires {
                for p in &wire.points {
                    if !p.on_grid(rules.grid) {
                        out.push(Violation::OffGridWire {
                            cell: cell_name.to_string(),
                            page: sheet.page,
                            at: (p.x, p.y),
                        });
                    }
                }
                if let Some(label) = &wire.label {
                    match rules.bus.parse(&label.text, &cell.buses) {
                        Ok(_) => {
                            names_on_page
                                .entry(label.text.clone())
                                .or_default()
                                .insert(sheet.page);
                        }
                        Err(e) => out.push(Violation::BadNetName {
                            cell: cell_name.to_string(),
                            page: sheet.page,
                            name: label.text.as_str().to_string(),
                            reason: e.to_string(),
                        }),
                    }
                    if label.font != rules.font {
                        out.push(Violation::WrongFont {
                            cell: cell_name.to_string(),
                            page: sheet.page,
                            text: label.text.as_str().to_string(),
                        });
                    }
                }
            }
            for conn in &sheet.connectors {
                match conn.kind {
                    ConnectorKind::OffPage => {
                        offpage_names.insert(conn.name.clone());
                    }
                    k if k.is_hierarchy() => {
                        hier_names.insert(conn.name.clone());
                    }
                    _ => {}
                }
            }
            for ann in &sheet.annotations {
                if ann.font != rules.font {
                    out.push(Violation::WrongFont {
                        cell: cell_name.to_string(),
                        page: sheet.page,
                        text: ann.text.as_str().to_string(),
                    });
                }
            }
        }

        if rules.requires_offpage_connectors {
            for (name, pages) in &names_on_page {
                if pages.len() > 1
                    && !offpage_names.contains(name)
                    && !design.globals().contains(name)
                {
                    out.push(Violation::MissingOffPage {
                        cell: cell_name.to_string(),
                        net: name.as_str().to_string(),
                    });
                }
            }
        }
        if rules.requires_hier_connectors {
            for port in &cell.ports {
                if !hier_names.contains(&port.name) {
                    out.push(Violation::MissingHierConnector {
                        cell: cell_name.to_string(),
                        port: port.name.as_str().to_string(),
                    });
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_tables_match_the_paper() {
        let v = DialectRules::viewstar();
        let c = DialectRules::cascade();
        // 1/10" grid with 2/10" pin spacing; 1/16" grid with 2/16".
        assert_eq!(v.grid * 10, crate::geom::DBU_PER_INCH);
        assert_eq!(c.grid * 16, crate::geom::DBU_PER_INCH);
        assert_eq!(v.pin_pitch, 2 * v.grid);
        assert_eq!(c.pin_pitch, 2 * c.grid);
        assert!(v.implicit_page_nets && !c.implicit_page_nets);
        assert!(c.requires_hier_connectors && !v.requires_hier_connectors);
    }

    #[test]
    fn scale_factor_is_five_eighths_viewstar_to_cascade() {
        let v = DialectRules::viewstar();
        let c = DialectRules::cascade();
        assert_eq!(v.scale_to(&c), (5, 8));
        assert_eq!(c.scale_to(&v), (8, 5));
        assert_eq!(v.scale_to(&v), (1, 1));
    }
}

#[cfg(test)]
mod violation_tests {
    use super::*;
    use crate::design::{CellSchematic, Design};
    use crate::geom::Point;
    use crate::property::{FontMetrics, Label};
    use crate::sheet::{Sheet, Wire};

    #[test]
    fn violations_render_readably() {
        let samples = vec![
            Violation::OffGridInstance {
                cell: "top".into(),
                page: 1,
                inst: "I1".into(),
            },
            Violation::OffGridWire {
                cell: "top".into(),
                page: 2,
                at: (3, 7),
            },
            Violation::BadNetName {
                cell: "top".into(),
                page: 1,
                name: "9x".into(),
                reason: "bad".into(),
            },
            Violation::MissingOffPage {
                cell: "top".into(),
                net: "sig".into(),
            },
            Violation::MissingHierConnector {
                cell: "top".into(),
                port: "IN".into(),
            },
            Violation::WrongFont {
                cell: "top".into(),
                page: 1,
                text: "n1".into(),
            },
            Violation::DanglingSymbol {
                cell: "top".into(),
                inst: "I1".into(),
                symbol: "l/c/v".into(),
            },
        ];
        for v in samples {
            let text = v.to_string();
            assert!(text.contains("top"), "{text}");
        }
    }

    #[test]
    fn conformance_flags_bad_names_and_fonts() {
        let mut d = Design::new("t", DialectId::Cascade);
        let mut cell = CellSchematic::new("top");
        let mut s = Sheet::new(1);
        s.wires.push(
            Wire::new(vec![Point::new(0, 0), Point::new(10, 0)]).with_label(Label::new(
                "9bad",
                Point::new(0, 4),
                FontMetrics::VIEWSTAR, // wrong font for Cascade too
            )),
        );
        cell.sheets.push(s);
        d.add_cell(cell);
        let violations = check_conformance(&d, &DialectRules::cascade());
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::BadNetName { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongFont { .. })));
    }
}
