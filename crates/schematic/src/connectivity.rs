//! Connectivity extraction: from drawn geometry to electrical nets.
//!
//! This is the machinery behind two of the paper's Section 2 issues:
//! *off-page connectors* ("Viewlogic connects same signal names across
//! multiple pages implicitly... Cascade requires these connections to be
//! explicit") and *verification* (the extracted netlist is the canonical
//! form compared before and after translation).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use interop_core::intern::IStr;

use crate::bus::{BusSyntax, NetExpr};
use crate::design::{CellSchematic, Design};
use crate::dialect::DialectRules;
use crate::netlist::{CellNetlist, NetInfo, Netlist, PinRef};
use crate::sheet::ConnectorKind;

/// An extraction problem that prevents a clean netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// A wire or connector label failed to parse under the dialect
    /// grammar.
    UnparsedLabel {
        /// Page number.
        page: u32,
        /// Label text.
        text: String,
        /// Parser message.
        reason: String,
    },
    /// A scalar-named pin or label touched a bus bundle.
    BusTapMismatch {
        /// Page number.
        page: u32,
        /// Description of the offending attachment.
        what: String,
        /// The bundle's base names.
        bundle: String,
    },
    /// An instance references a symbol missing from the libraries; its
    /// pins cannot be extracted.
    UnresolvedSymbol {
        /// Page number.
        page: u32,
        /// Instance name.
        inst: String,
    },
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::UnparsedLabel { page, text, reason } => {
                write!(f, "p{page}: label `{text}`: {reason}")
            }
            ConnError::BusTapMismatch { page, what, bundle } => {
                write!(f, "p{page}: {what} attached to bundle {bundle}")
            }
            ConnError::UnresolvedSymbol { page, inst } => {
                write!(f, "p{page}: instance {inst}: unresolved symbol")
            }
        }
    }
}

/// One extracted electrical net.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractedNet {
    /// Canonical name (lexicographically smallest alias, or a synthetic
    /// `N$k` for anonymous nets).
    pub name: String,
    /// Every name attached to the net.
    pub aliases: BTreeSet<String>,
    /// Instance pins on the net.
    pub pins: BTreeSet<PinRef>,
    /// Pages the net appears on.
    pub pages: BTreeSet<u32>,
    /// Port names binding the net to the parent cell.
    pub ports: BTreeSet<String>,
    /// True when the net is a declared global.
    pub is_global: bool,
    /// True when an off-page connector is attached.
    pub has_offpage: bool,
}

/// Result of extracting one cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Extraction {
    /// Cell name.
    pub cell: String,
    /// The extracted nets, sorted by canonical name.
    pub nets: Vec<ExtractedNet>,
    /// Problems found along the way.
    pub errors: Vec<ConnError>,
}

impl Extraction {
    /// Finds a net by any alias.
    pub fn net(&self, name: &str) -> Option<&ExtractedNet> {
        self.nets
            .iter()
            .find(|n| n.name == name || n.aliases.contains(name))
    }
}

/// Formats an expanded bit or scalar name: `base<idx>` with any postfix
/// appended.
fn expanded(base: &str, idx: Option<i64>, postfix: Option<char>) -> String {
    let mut s = match idx {
        Some(i) => format!("{base}<{i}>"),
        None => base.to_string(),
    };
    if let Some(c) = postfix {
        s.push(c);
    }
    s
}

/// Union-find over small index sets.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }
    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// What a geometric cluster has attached to it.
#[derive(Debug, Clone, Default)]
struct Cluster {
    page: u32,
    min_point: (i64, i64),
    /// Scalar / single-bit names (already expanded, postfix folded in).
    names: BTreeSet<String>,
    /// Bus ranges labelled onto the cluster: (base, from, to, postfix).
    ranges: Vec<(String, i64, i64, Option<char>)>,
    pins: Vec<(PinRef, IStr)>, // pin ref + raw pin name
    offpage_names: BTreeSet<String>,
    port_names: BTreeSet<String>,
}

/// A net "atom": the per-bit (or per-scalar) unit produced from one
/// cluster, before name-based merging.
#[derive(Debug, Clone, Default)]
struct Atom {
    page: u32,
    order_key: (u32, i64, i64),
    names: BTreeSet<String>,
    pins: BTreeSet<PinRef>,
    ports: BTreeSet<String>,
    has_offpage: bool,
}

/// Extracts the connectivity of one cell under a dialect rule table.
pub fn extract_cell(design: &Design, cell: &CellSchematic, rules: &DialectRules) -> Extraction {
    let mut errors = Vec::new();
    let mut uf = UnionFind::new();
    let mut nodes: BTreeMap<(u32, i64, i64), usize> = BTreeMap::new();
    let node_of =
        |uf: &mut UnionFind,
         nodes: &mut BTreeMap<(u32, i64, i64), usize>,
         page: u32,
         x: i64,
         y: i64| { *nodes.entry((page, x, y)).or_insert_with(|| uf.make()) };

    // Pass 1: register geometry and union wire paths.
    struct PinSite {
        page: u32,
        node: usize,
        pin: PinRef,
        raw_name: IStr,
    }
    let mut pin_sites: Vec<PinSite> = Vec::new();
    struct ConnSite {
        node: usize,
        kind: ConnectorKind,
        name: IStr,
    }
    let mut conn_sites: Vec<ConnSite> = Vec::new();

    for sheet in &cell.sheets {
        for wire in &sheet.wires {
            let mut prev: Option<usize> = None;
            for p in &wire.points {
                let n = node_of(&mut uf, &mut nodes, sheet.page, p.x, p.y);
                if let Some(pn) = prev {
                    uf.union(pn, n);
                }
                prev = Some(n);
            }
        }
        for inst in &sheet.instances {
            let Some(sym) = design.resolve_symbol(&inst.symbol) else {
                errors.push(ConnError::UnresolvedSymbol {
                    page: sheet.page,
                    inst: inst.name.as_str().to_string(),
                });
                continue;
            };
            for pin in &sym.pins {
                let at = inst.place.apply(pin.at);
                let n = node_of(&mut uf, &mut nodes, sheet.page, at.x, at.y);
                pin_sites.push(PinSite {
                    page: sheet.page,
                    node: n,
                    pin: PinRef::new(inst.name.clone(), pin.name.clone()),
                    raw_name: pin.name.clone(),
                });
            }
        }
        for conn in &sheet.connectors {
            let n = node_of(&mut uf, &mut nodes, sheet.page, conn.at.x, conn.at.y);
            conn_sites.push(ConnSite {
                node: n,
                kind: conn.kind,
                name: conn.name.clone(),
            });
        }
    }

    // Pass 2: union every registered node that touches a wire on the same
    // page (captures T junctions and pins landing mid-segment).
    {
        let keys: Vec<(u32, i64, i64)> = nodes.keys().copied().collect();
        for sheet in &cell.sheets {
            for wire in &sheet.wires {
                let head = wire.points[0];
                let head_node = nodes[&(sheet.page, head.x, head.y)];
                for &(pg, x, y) in &keys {
                    if pg != sheet.page {
                        continue;
                    }
                    let p = crate::geom::Point::new(x, y);
                    if wire.touches(p) {
                        let n = nodes[&(pg, x, y)];
                        uf.union(n, head_node);
                    }
                }
            }
        }
    }

    // Pass 3: gather cluster attributes.
    let mut clusters: BTreeMap<usize, Cluster> = BTreeMap::new();
    let cluster_of = |uf: &mut UnionFind,
                      clusters: &mut BTreeMap<usize, Cluster>,
                      node: usize,
                      page: u32,
                      at: (i64, i64)|
     -> usize {
        let root = uf.find(node);
        let c = clusters.entry(root).or_insert_with(|| Cluster {
            page,
            min_point: at,
            ..Cluster::default()
        });
        if at < c.min_point {
            c.min_point = at;
        }
        root
    };

    for ((page, x, y), &node) in &nodes {
        cluster_of(&mut uf, &mut clusters, node, *page, (*x, *y));
    }

    // Wire labels.
    for sheet in &cell.sheets {
        for wire in &sheet.wires {
            let Some(label) = &wire.label else { continue };
            let head = wire.points[0];
            let node = nodes[&(sheet.page, head.x, head.y)];
            let root = cluster_of(&mut uf, &mut clusters, node, sheet.page, (head.x, head.y));
            match rules.bus.parse(&label.text, &cell.buses) {
                Ok(name) => {
                    let cl = clusters.get_mut(&root).expect("cluster exists");
                    match name.expr {
                        NetExpr::Scalar(b) => {
                            cl.names.insert(expanded(&b, None, name.postfix));
                        }
                        NetExpr::Bit(b, i) => {
                            cl.names.insert(expanded(&b, Some(i), name.postfix));
                        }
                        NetExpr::Range(b, f, t) => cl.ranges.push((b, f, t, name.postfix)),
                    }
                }
                Err(e) => errors.push(ConnError::UnparsedLabel {
                    page: sheet.page,
                    text: label.text.as_str().to_string(),
                    reason: e.to_string(),
                }),
            }
        }
    }

    // Connectors.
    for site in &conn_sites {
        let root = uf.find(site.node);
        let cl = clusters.get_mut(&root).expect("cluster exists");
        let parsed = rules.bus.parse(&site.name, &cell.buses);
        let parsed = match parsed {
            Ok(p) => p,
            Err(e) => {
                errors.push(ConnError::UnparsedLabel {
                    page: cl.page,
                    text: site.name.as_str().to_string(),
                    reason: e.to_string(),
                });
                continue;
            }
        };
        match parsed.expr {
            NetExpr::Scalar(b) => {
                let n = expanded(&b, None, parsed.postfix);
                match site.kind {
                    ConnectorKind::OffPage => {
                        cl.offpage_names.insert(n.clone());
                    }
                    k if k.is_hierarchy() => {
                        cl.port_names.insert(n.clone());
                    }
                    _ => {}
                }
                cl.names.insert(n);
            }
            NetExpr::Bit(b, i) => {
                let n = expanded(&b, Some(i), parsed.postfix);
                match site.kind {
                    ConnectorKind::OffPage => {
                        cl.offpage_names.insert(n.clone());
                    }
                    k if k.is_hierarchy() => {
                        cl.port_names.insert(n.clone());
                    }
                    _ => {}
                }
                cl.names.insert(n);
            }
            NetExpr::Range(b, f, t) => {
                for bit in NetExpr::Range(b.clone(), f, t).bits() {
                    if let NetExpr::Bit(bb, i) = bit {
                        let n = expanded(&bb, Some(i), parsed.postfix);
                        match site.kind {
                            ConnectorKind::OffPage => {
                                cl.offpage_names.insert(n.clone());
                            }
                            k if k.is_hierarchy() => {
                                cl.port_names.insert(n.clone());
                            }
                            _ => {}
                        }
                    }
                }
                cl.ranges.push((b, f, t, parsed.postfix));
            }
        }
    }

    // Pins.
    for site in &pin_sites {
        let root = uf.find(site.node);
        let cl = clusters.get_mut(&root).expect("cluster exists");
        cl.pins.push((site.pin.clone(), site.raw_name.clone()));
        let _ = site.page;
    }

    // Pass 4: clusters -> atoms.
    let mut atoms: Vec<Atom> = Vec::new();
    for cl in clusters.values() {
        let order_key = (cl.page, cl.min_point.0, cl.min_point.1);
        if cl.ranges.is_empty() {
            // Plain net.
            let mut atom = Atom {
                page: cl.page,
                order_key,
                names: cl.names.clone(),
                ports: cl.port_names.clone(),
                has_offpage: !cl.offpage_names.is_empty(),
                ..Atom::default()
            };
            for (pin, _raw) in &cl.pins {
                atom.pins.insert(pin.clone());
            }
            atoms.push(atom);
        } else {
            // Bundle: one atom per covered bit.
            let bases: BTreeSet<&str> = cl.ranges.iter().map(|(b, _, _, _)| b.as_str()).collect();
            let mut bits: BTreeMap<String, Atom> = BTreeMap::new();
            for (b, f, t, pf) in &cl.ranges {
                for bit in NetExpr::Range(b.clone(), *f, *t).bits() {
                    if let NetExpr::Bit(bb, i) = bit {
                        let n = expanded(&bb, Some(i), *pf);
                        let atom = bits.entry(n.clone()).or_insert_with(|| Atom {
                            page: cl.page,
                            order_key,
                            ..Atom::default()
                        });
                        atom.names.insert(n.clone());
                        if cl.offpage_names.contains(&n) {
                            atom.has_offpage = true;
                        }
                        if cl.port_names.contains(&n) {
                            atom.ports.insert(n.clone());
                        }
                    }
                }
            }
            // Pins must be bus-bit named with a matching base.
            let scope: BTreeSet<IStr> = bases.iter().map(|s| IStr::from(*s)).collect();
            for (pin, raw) in &cl.pins {
                match BusSyntax::Viewstar.parse(raw, &scope) {
                    Ok(p) => match p.expr {
                        NetExpr::Bit(b, i) if bases.contains(b.as_str()) => {
                            // Attach to any postfix variant carrying this bit.
                            let mut attached = false;
                            for (b2, f, t, pf) in &cl.ranges {
                                if *b2 == b {
                                    let lo = *f.min(t);
                                    let hi = *f.max(t);
                                    if i >= lo && i <= hi {
                                        let n = expanded(&b, Some(i), *pf);
                                        if let Some(atom) = bits.get_mut(&n) {
                                            atom.pins.insert(pin.clone());
                                            attached = true;
                                        }
                                    }
                                }
                            }
                            if !attached {
                                errors.push(ConnError::BusTapMismatch {
                                    page: cl.page,
                                    what: format!("pin {pin} bit {i} outside bundle range"),
                                    bundle: bases.iter().copied().collect::<Vec<_>>().join(","),
                                });
                            }
                        }
                        _ => errors.push(ConnError::BusTapMismatch {
                            page: cl.page,
                            what: format!("scalar pin {pin}"),
                            bundle: bases.iter().copied().collect::<Vec<_>>().join(","),
                        }),
                    },
                    Err(e) => errors.push(ConnError::UnparsedLabel {
                        page: cl.page,
                        text: raw.as_str().to_string(),
                        reason: e.to_string(),
                    }),
                }
            }
            // Scalar names alongside ranges are taps onto single bits or
            // mistakes.
            for n in &cl.names {
                let covered = bits.contains_key(n);
                if !covered {
                    errors.push(ConnError::BusTapMismatch {
                        page: cl.page,
                        what: format!("name `{n}`"),
                        bundle: bases.iter().copied().collect::<Vec<_>>().join(","),
                    });
                }
            }
            atoms.extend(bits.into_values());
        }
    }

    // Pass 5: merge atoms by name per dialect rules.
    atoms.sort_by_key(|a| a.order_key);
    let mut auf = UnionFind::new();
    for _ in 0..atoms.len() {
        auf.make();
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        for n in &atom.names {
            by_name.entry(n).or_default().push(i);
        }
    }
    for (name, members) in &by_name {
        let is_global = design.globals().contains(*name);
        if rules.implicit_page_nets || is_global {
            for w in members.windows(2) {
                auf.union(w[0], w[1]);
            }
        } else {
            // Same-page merging always applies.
            let mut per_page: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for &m in members {
                per_page.entry(atoms[m].page).or_default().push(m);
            }
            for v in per_page.values() {
                for w in v.windows(2) {
                    auf.union(w[0], w[1]);
                }
            }
            // Cross-page merging only through off-page connectors.
            let gated: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&m| atoms[m].has_offpage)
                .collect();
            for w in gated.windows(2) {
                auf.union(w[0], w[1]);
            }
        }
    }

    // Pass 6: materialize nets.
    let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..atoms.len() {
        grouped.entry(auf.find(i)).or_default().push(i);
    }
    let port_names: BTreeSet<&str> = cell.ports.iter().map(|p| p.name.as_str()).collect();
    let mut nets: Vec<ExtractedNet> = Vec::new();
    let mut anon = 0usize;
    let mut groups: Vec<Vec<usize>> = grouped.into_values().collect();
    groups.sort_by_key(|g| atoms[g[0]].order_key);
    for group in groups {
        let mut net = ExtractedNet::default();
        for &i in &group {
            let a = &atoms[i];
            net.aliases.extend(a.names.iter().cloned());
            net.pins.extend(a.pins.iter().cloned());
            net.pages.insert(a.page);
            net.ports.extend(a.ports.iter().cloned());
            net.has_offpage |= a.has_offpage;
        }
        if net.pins.is_empty() && net.aliases.is_empty() {
            continue; // dangling geometry with nothing attached
        }
        // Name-based port binding (Viewstar has no hierarchy connectors).
        for alias in &net.aliases {
            if port_names.contains(alias.as_str()) {
                net.ports.insert(alias.clone());
            }
        }
        net.is_global = net
            .aliases
            .iter()
            .any(|n| design.globals().contains(n.as_str()));
        net.name = match net.aliases.iter().next() {
            Some(n) => n.clone(),
            None => {
                anon += 1;
                format!("N${anon}")
            }
        };
        nets.push(net);
    }
    nets.sort_by(|a, b| a.name.cmp(&b.name));

    Extraction {
        cell: cell.cell.clone(),
        nets,
        errors,
    }
}

/// Extracts every cell of a design into a canonical [`Netlist`].
///
/// Returns the netlist plus all per-cell extraction errors.
pub fn extract_design(
    design: &Design,
    rules: &DialectRules,
) -> (Netlist, Vec<(String, ConnError)>) {
    let mut netlist = Netlist::new(design.name.clone());
    let mut errors = Vec::new();
    for (name, cell) in design.cells() {
        let ex = extract_cell(design, cell, rules);
        let mut cn = CellNetlist::default();
        for sheet in &cell.sheets {
            for inst in &sheet.instances {
                cn.instances
                    .insert(inst.name.clone(), inst.symbol.cell.clone());
            }
        }
        for net in ex.nets {
            cn.nets.insert(
                net.name.clone(),
                NetInfo {
                    pins: net.pins,
                    is_global: net.is_global,
                    ports: net.ports,
                },
            );
        }
        for e in ex.errors {
            errors.push((name.to_string(), e));
        }
        netlist.cells.insert(name.to_string(), cn);
    }
    (netlist, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{CellSchematic, Library};
    use crate::dialect::{DialectId, DialectRules};
    use crate::geom::{Orient, Point};
    use crate::property::{FontMetrics, Label};
    use crate::sheet::{Connector, Instance, Sheet, Wire};
    use crate::symbol::{PinDir, SymbolDef, SymbolRef};

    fn inv_symbol() -> SymbolDef {
        SymbolDef::new(SymbolRef::new("basiclib", "inv", "symbol"), 16)
            .with_pin("A", Point::new(0, 0), PinDir::Input)
            .with_pin("Y", Point::new(64, 0), PinDir::Output)
    }

    fn design_with_lib() -> Design {
        let mut d = Design::new("t", DialectId::Viewstar);
        let mut lib = Library::new("basiclib");
        lib.add(inv_symbol());
        d.add_library(lib);
        d
    }

    fn label(text: &str, at: Point) -> Label {
        Label::new(text, at, FontMetrics::VIEWSTAR)
    }

    #[test]
    fn two_inverters_in_series_extract_three_nets() {
        let mut d = design_with_lib();
        let mut cell = CellSchematic::new("top");
        let mut s = Sheet::new(1);
        let sym = SymbolRef::new("basiclib", "inv", "symbol");
        s.instances.push(Instance::new(
            "I1",
            sym.clone(),
            Point::new(0, 0),
            Orient::R0,
        ));
        s.instances.push(Instance::new(
            "I2",
            sym.clone(),
            Point::new(160, 0),
            Orient::R0,
        ));
        // I1.Y at (64,0) to I2.A at (160,0).
        s.wires.push(
            Wire::new(vec![Point::new(64, 0), Point::new(160, 0)])
                .with_label(label("mid", Point::new(96, 4))),
        );
        cell.sheets.push(s);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        assert!(ex.errors.is_empty(), "{:?}", ex.errors);
        // mid + two dangling pin nets (I1.A, I2.Y).
        assert_eq!(ex.nets.len(), 3);
        let mid = ex.net("mid").expect("mid exists");
        assert_eq!(mid.pins.len(), 2);
        assert!(mid.pins.contains(&PinRef::new("I1", "Y")));
        assert!(mid.pins.contains(&PinRef::new("I2", "A")));
    }

    #[test]
    fn t_junction_connects_mid_segment() {
        let mut d = design_with_lib();
        let mut cell = CellSchematic::new("top");
        let mut s = Sheet::new(1);
        let sym = SymbolRef::new("basiclib", "inv", "symbol");
        s.instances.push(Instance::new(
            "I1",
            sym.clone(),
            Point::new(0, 0),
            Orient::R0,
        ));
        // Horizontal wire through I1.Y; a vertical wire T-ing into its middle.
        s.wires
            .push(Wire::new(vec![Point::new(64, 0), Point::new(192, 0)]));
        s.wires
            .push(Wire::new(vec![Point::new(128, -64), Point::new(128, 0)]));
        cell.sheets.push(s);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        // I1.Y + both wires are one net; I1.A dangles.
        assert_eq!(ex.nets.len(), 2);
        let with_pin = ex
            .nets
            .iter()
            .find(|n| n.pins.contains(&PinRef::new("I1", "Y")))
            .unwrap();
        assert_eq!(with_pin.pins.len(), 1);
    }

    #[test]
    fn implicit_page_merge_in_viewstar_but_not_cascade() {
        let build = |dialect: DialectId| {
            let mut d = design_with_lib();
            d.dialect = dialect;
            let mut cell = CellSchematic::new("top");
            let sym = SymbolRef::new("basiclib", "inv", "symbol");
            let mut s1 = Sheet::new(1);
            s1.instances.push(Instance::new(
                "I1",
                sym.clone(),
                Point::new(0, 0),
                Orient::R0,
            ));
            s1.wires.push(
                Wire::new(vec![Point::new(64, 0), Point::new(160, 0)])
                    .with_label(label("sig", Point::new(96, 4))),
            );
            let mut s2 = Sheet::new(2);
            s2.instances.push(Instance::new(
                "I2",
                sym.clone(),
                Point::new(320, 0),
                Orient::R0,
            ));
            s2.wires.push(
                Wire::new(vec![Point::new(240, 0), Point::new(320, 0)])
                    .with_label(label("sig", Point::new(260, 4))),
            );
            cell.sheets.push(s1);
            cell.sheets.push(s2);
            d.add_cell(cell);
            d
        };

        let dv = build(DialectId::Viewstar);
        let ex = extract_cell(&dv, dv.cell("top").unwrap(), &DialectRules::viewstar());
        let sig = ex.net("sig").unwrap();
        assert_eq!(sig.pins.len(), 2, "viewstar merges by name across pages");
        assert_eq!(sig.pages.len(), 2);

        let dc = build(DialectId::Cascade);
        let ex = extract_cell(&dc, dc.cell("top").unwrap(), &DialectRules::cascade());
        let sig = ex.net("sig").unwrap();
        assert_eq!(sig.pins.len(), 1, "cascade needs off-page connectors");
    }

    #[test]
    fn offpage_connectors_merge_pages_in_cascade() {
        let mut d = design_with_lib();
        d.dialect = DialectId::Cascade;
        let mut cell = CellSchematic::new("top");
        let sym = SymbolRef::new("basiclib", "inv", "symbol");
        let mut s1 = Sheet::new(1);
        s1.instances.push(Instance::new(
            "I1",
            sym.clone(),
            Point::new(0, 0),
            Orient::R0,
        ));
        s1.wires.push(
            Wire::new(vec![Point::new(64, 0), Point::new(160, 0)]).with_label(Label::new(
                "sig",
                Point::new(96, 4),
                FontMetrics::CASCADE,
            )),
        );
        s1.connectors.push(Connector::new(
            ConnectorKind::OffPage,
            "sig",
            Point::new(160, 0),
        ));
        let mut s2 = Sheet::new(2);
        s2.instances.push(Instance::new(
            "I2",
            sym.clone(),
            Point::new(320, 0),
            Orient::R0,
        ));
        s2.wires.push(
            Wire::new(vec![Point::new(240, 0), Point::new(320, 0)]).with_label(Label::new(
                "sig",
                Point::new(260, 4),
                FontMetrics::CASCADE,
            )),
        );
        s2.connectors.push(Connector::new(
            ConnectorKind::OffPage,
            "sig",
            Point::new(240, 0),
        ));
        cell.sheets.push(s1);
        cell.sheets.push(s2);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::cascade());
        let sig = ex.net("sig").unwrap();
        assert_eq!(sig.pins.len(), 2);
        assert!(sig.has_offpage);
    }

    #[test]
    fn globals_merge_everywhere() {
        let mut d = design_with_lib();
        d.add_global("VDD");
        d.dialect = DialectId::Cascade;
        let mut cell = CellSchematic::new("top");
        let mut s1 = Sheet::new(1);
        s1.wires.push(
            Wire::new(vec![Point::new(0, 0), Point::new(40, 0)]).with_label(Label::new(
                "VDD",
                Point::new(0, 4),
                FontMetrics::CASCADE,
            )),
        );
        let mut s2 = Sheet::new(2);
        s2.wires.push(
            Wire::new(vec![Point::new(100, 0), Point::new(140, 0)]).with_label(Label::new(
                "VDD",
                Point::new(100, 4),
                FontMetrics::CASCADE,
            )),
        );
        cell.sheets.push(s1);
        cell.sheets.push(s2);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::cascade());
        let vdd = ex.net("VDD").unwrap();
        assert!(vdd.is_global);
        assert_eq!(vdd.pages.len(), 2);
    }

    #[test]
    fn bundle_label_expands_to_bit_nets() {
        let mut d = design_with_lib();
        // Symbol with bus-bit pins.
        let reg = SymbolDef::new(SymbolRef::new("basiclib", "reg2", "symbol"), 16)
            .with_pin("D<0>", Point::new(0, 0), PinDir::Input)
            .with_pin("D<1>", Point::new(0, 32), PinDir::Input);
        d.library_mut("basiclib").unwrap().add(reg);

        let mut cell = CellSchematic::new("top");
        cell.buses.insert("D".into());
        let mut s = Sheet::new(1);
        s.instances.push(Instance::new(
            "R1",
            SymbolRef::new("basiclib", "reg2", "symbol"),
            Point::new(160, 0),
            Orient::R0,
        ));
        // A bus wire touching both pins (runs vertically through them).
        s.wires.push(
            Wire::new(vec![Point::new(160, 0), Point::new(160, 32)])
                .with_label(label("D<0:1>", Point::new(164, 16))),
        );
        cell.sheets.push(s);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        assert!(ex.errors.is_empty(), "{:?}", ex.errors);
        let d0 = ex.net("D<0>").unwrap();
        assert!(d0.pins.contains(&PinRef::new("R1", "D<0>")));
        let d1 = ex.net("D<1>").unwrap();
        assert!(d1.pins.contains(&PinRef::new("R1", "D<1>")));
    }

    #[test]
    fn scalar_pin_on_bundle_is_an_error() {
        let mut d = design_with_lib();
        let mut cell = CellSchematic::new("top");
        cell.buses.insert("D".into());
        let mut s = Sheet::new(1);
        s.instances.push(Instance::new(
            "I1",
            SymbolRef::new("basiclib", "inv", "symbol"),
            Point::new(0, 0),
            Orient::R0,
        ));
        // Bundle wire straight through the scalar pin A at (0,0).
        s.wires.push(
            Wire::new(vec![Point::new(0, -16), Point::new(0, 16)])
                .with_label(label("D<0:3>", Point::new(4, 0))),
        );
        cell.sheets.push(s);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        assert!(ex
            .errors
            .iter()
            .any(|e| matches!(e, ConnError::BusTapMismatch { .. })));
    }

    #[test]
    fn condensed_tap_joins_bus_bit() {
        // Viewstar: a wire labelled D2 with bus D declared joins D<2>.
        let mut d = design_with_lib();
        let mut cell = CellSchematic::new("top");
        cell.buses.insert("D".into());
        let mut s = Sheet::new(1);
        s.wires.push(
            Wire::new(vec![Point::new(0, 0), Point::new(32, 0)])
                .with_label(label("D2", Point::new(0, 4))),
        );
        s.wires.push(
            Wire::new(vec![Point::new(100, 0), Point::new(132, 0)])
                .with_label(label("D<2>", Point::new(100, 4))),
        );
        cell.sheets.push(s);
        d.add_cell(cell);

        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        let net = ex.net("D<2>").unwrap();
        assert_eq!(net.aliases.len(), 1, "both labels expand to D<2>");
        assert_eq!(
            ex.nets
                .iter()
                .filter(|n| n.aliases.contains("D<2>"))
                .count(),
            1,
            "the two wires merged by expanded name"
        );
    }

    #[test]
    fn unresolved_symbol_reports_error() {
        let d0 = design_with_lib();
        let mut d = d0.clone();
        let mut cell = CellSchematic::new("top");
        let mut s = Sheet::new(1);
        s.instances.push(Instance::new(
            "I1",
            SymbolRef::new("ghost", "none", "symbol"),
            Point::new(0, 0),
            Orient::R0,
        ));
        cell.sheets.push(s);
        d.add_cell(cell);
        let ex = extract_cell(&d, d.cell("top").unwrap(), &DialectRules::viewstar());
        assert!(matches!(ex.errors[0], ConnError::UnresolvedSymbol { .. }));
    }

    #[test]
    fn extract_design_builds_netlist_with_ports() {
        let mut d = design_with_lib();
        let mut cell = CellSchematic::new("top");
        cell.ports.push(crate::symbol::SymbolPin::new(
            "OUT",
            Point::new(0, 0),
            PinDir::Output,
        ));
        let mut s = Sheet::new(1);
        s.instances.push(Instance::new(
            "I1",
            SymbolRef::new("basiclib", "inv", "symbol"),
            Point::new(0, 0),
            Orient::R0,
        ));
        s.wires.push(
            Wire::new(vec![Point::new(64, 0), Point::new(96, 0)])
                .with_label(label("OUT", Point::new(70, 4))),
        );
        cell.sheets.push(s);
        d.add_cell(cell);

        let (nl, errs) = extract_design(&d, &DialectRules::viewstar());
        assert!(errs.is_empty());
        let top = &nl.cells["top"];
        assert!(top.nets["OUT"].ports.contains("OUT"));
        assert_eq!(top.instances["I1"], "inv");
    }
}
