//! Properties, labels, and font metrics.
//!
//! Section 2 of the paper devotes three of its issue categories to
//! properties (standard mapping, non-standard mapping, cosmetic text
//! issues); this module is the data model those rules operate on.

use std::collections::BTreeMap;
use std::fmt;

use interop_core::intern::IStr;

use crate::geom::Point;

/// The value of a schematic property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// Free-form text, by far the most common vendor representation.
    Text(String),
    /// Integer value (e.g. a pin count or drive strength index).
    Int(i64),
    /// Real value (e.g. an analog device parameter).
    Real(f64),
    /// Boolean flag.
    Flag(bool),
}

impl PropValue {
    /// Renders the value the way both dialect writers print it.
    pub fn to_text(&self) -> String {
        match self {
            PropValue::Text(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Real(r) => format!("{r}"),
            PropValue::Flag(b) => if *b { "true" } else { "false" }.to_string(),
        }
    }

    /// Best-effort parse back from text: ints, then reals, then flags,
    /// falling back to [`PropValue::Text`]. Inverse of [`Self::to_text`]
    /// for values it produces.
    pub fn from_text(s: &str) -> PropValue {
        if let Ok(i) = s.parse::<i64>() {
            return PropValue::Int(i);
        }
        if let Ok(r) = s.parse::<f64>() {
            return PropValue::Real(r);
        }
        match s {
            "true" => PropValue::Flag(true),
            "false" => PropValue::Flag(false),
            _ => PropValue::Text(s.to_string()),
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Text(s.to_string())
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Text(s)
    }
}

impl From<i64> for PropValue {
    fn from(i: i64) -> Self {
        PropValue::Int(i)
    }
}

impl From<f64> for PropValue {
    fn from(r: f64) -> Self {
        PropValue::Real(r)
    }
}

impl From<bool> for PropValue {
    fn from(b: bool) -> Self {
        PropValue::Flag(b)
    }
}

/// An ordered name → value property map.
///
/// Ordered (BTreeMap) so that dialect writers emit deterministic text and
/// netlist comparison is stable. Keys are interned — property names like
/// `refdes` or `SIZE` recur on nearly every instance, and `IStr` orders by
/// content, so iteration (and therefore emitted text) is unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropMap {
    entries: BTreeMap<IStr, PropValue>,
}

impl PropMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        PropMap::default()
    }

    /// Inserts or replaces a property, returning the previous value.
    pub fn set(&mut self, name: impl Into<IStr>, value: impl Into<PropValue>) -> Option<PropValue> {
        self.entries.insert(name.into(), value.into())
    }

    /// Looks up a property by name.
    pub fn get(&self, name: &str) -> Option<&PropValue> {
        self.entries.get(name)
    }

    /// Removes a property, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<PropValue> {
        self.entries.remove(name)
    }

    /// Renames a property, preserving its value. Returns `false` when the
    /// source property does not exist (the map is unchanged).
    pub fn rename(&mut self, from: &str, to: impl Into<IStr>) -> bool {
        match self.entries.remove(from) {
            Some(v) => {
                self.entries.insert(to.into(), v);
                true
            }
            None => false,
        }
    }

    /// True when the property exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Property names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(IStr::as_str)
    }
}

impl FromIterator<(String, PropValue)> for PropMap {
    fn from_iter<I: IntoIterator<Item = (String, PropValue)>>(iter: I) -> Self {
        PropMap {
            entries: iter.into_iter().map(|(k, v)| (IStr::from(k), v)).collect(),
        }
    }
}

impl FromIterator<(IStr, PropValue)> for PropMap {
    fn from_iter<I: IntoIterator<Item = (IStr, PropValue)>>(iter: I) -> Self {
        PropMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, PropValue)> for PropMap {
    fn extend<I: IntoIterator<Item = (String, PropValue)>>(&mut self, iter: I) {
        self.entries
            .extend(iter.into_iter().map(|(k, v)| (IStr::from(k), v)));
    }
}

impl Extend<(IStr, PropValue)> for PropMap {
    fn extend<I: IntoIterator<Item = (IStr, PropValue)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// Where a text glyph's declared origin sits relative to its visual body.
///
/// The paper's cosmetic example: Viewlogic offsets each character's origin
/// from the baseline, so an `E` placed on a line "may appear as an F" after
/// naive translation. We model that as a per-dialect origin mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TextOrigin {
    /// Origin at the glyph baseline (Cascade convention).
    #[default]
    Baseline,
    /// Origin offset below the baseline by a fraction of the glyph height
    /// (Viewstar convention).
    BelowBaseline,
}

/// Font metrics used when rendering labels, in DBU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FontMetrics {
    /// Glyph height.
    pub height: i64,
    /// Average glyph advance width.
    pub width: i64,
    /// Origin convention.
    pub origin: TextOrigin,
    /// Vertical offset from declared origin to baseline (positive = glyph
    /// body drawn above the declared origin).
    pub baseline_offset: i64,
}

impl FontMetrics {
    /// Viewstar's smaller font with an origin offset below the baseline.
    pub const VIEWSTAR: FontMetrics = FontMetrics {
        height: 12,
        width: 8,
        origin: TextOrigin::BelowBaseline,
        baseline_offset: 3,
    };

    /// Cascade's larger, baseline-anchored font.
    pub const CASCADE: FontMetrics = FontMetrics {
        height: 16,
        width: 10,
        origin: TextOrigin::Baseline,
        baseline_offset: 0,
    };

    /// The visual baseline position of text declared at `anchor`.
    pub fn baseline_of(&self, anchor: Point) -> Point {
        anchor.offset(0, self.baseline_offset)
    }
}

/// Horizontal text justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Justify {
    /// Anchor at left edge of the text box.
    #[default]
    Left,
    /// Anchor at horizontal center.
    Center,
    /// Anchor at right edge.
    Right,
}

/// A piece of text placed on a sheet: a net name, a property display, or
/// free annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// The text content. Interned: net-name labels repeat across sheets
    /// and across every design generated from the same template.
    pub text: IStr,
    /// Declared anchor position (interpretation depends on font metrics).
    pub at: Point,
    /// Font used to render the label.
    pub font: FontMetrics,
    /// Horizontal justification about the anchor.
    pub justify: Justify,
}

impl Label {
    /// Creates a left-justified label with the given font.
    pub fn new(text: impl Into<IStr>, at: Point, font: FontMetrics) -> Self {
        Label {
            text: text.into(),
            at,
            font,
            justify: Justify::Left,
        }
    }

    /// Width of the rendered text in DBU.
    pub fn rendered_width(&self) -> i64 {
        self.text.chars().count() as i64 * self.font.width
    }

    /// The visual baseline anchor after applying the font's origin
    /// convention — the quantity that must be preserved across dialects to
    /// avoid the paper's "E appears as an F" defect.
    pub fn visual_baseline(&self) -> Point {
        self.font.baseline_of(self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_value_text_round_trip() {
        for v in [
            PropValue::Int(-42),
            PropValue::Real(2.5),
            PropValue::Flag(true),
            PropValue::Text("w=1.2u".into()),
        ] {
            assert_eq!(PropValue::from_text(&v.to_text()), v);
        }
    }

    #[test]
    fn prop_map_set_get_rename_remove() {
        let mut m = PropMap::new();
        assert!(m.is_empty());
        m.set("SIZE", 4i64);
        m.set("MODEL", "nmos_lv");
        assert_eq!(m.get("SIZE"), Some(&PropValue::Int(4)));
        assert!(m.rename("MODEL", "DEVICE"));
        assert!(!m.rename("MODEL", "X"));
        assert!(m.contains("DEVICE"));
        assert_eq!(m.remove("DEVICE"), Some(PropValue::Text("nmos_lv".into())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prop_map_iteration_is_name_ordered() {
        let mut m = PropMap::new();
        m.set("zeta", 1i64);
        m.set("alpha", 2i64);
        let names: Vec<_> = m.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn viewstar_font_shifts_the_baseline() {
        let l = Label::new("E", Point::new(0, 0), FontMetrics::VIEWSTAR);
        assert_eq!(l.visual_baseline(), Point::new(0, 3));
        let c = Label::new("E", Point::new(0, 0), FontMetrics::CASCADE);
        assert_eq!(c.visual_baseline(), Point::new(0, 0));
    }

    #[test]
    fn rendered_width_scales_with_length() {
        let l = Label::new("ABCD", Point::new(0, 0), FontMetrics::CASCADE);
        assert_eq!(l.rendered_width(), 40);
    }
}
