//! Geometry primitives for schematic data.
//!
//! All coordinates are integer *database units* (DBU). One inch is
//! [`DBU_PER_INCH`] units, chosen as the least common multiple of the two
//! vendor grids described in the paper (1/10 inch for Viewstar, 1/16 inch
//! for Cascade) so that both grids — and exact rational scaling between
//! them — are representable without rounding.

/// Database units per inch. `160 = lcm(10, 16) * 1`, i.e. 1/10" = 16 DBU
/// and 1/16" = 10 DBU.
pub const DBU_PER_INCH: i64 = 160;

/// A point in schematic database units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in DBU, increasing rightward.
    pub x: i64,
    /// Vertical coordinate in DBU, increasing upward.
    pub y: i64,
}

impl Point {
    /// Creates a point from `x`/`y` database-unit coordinates.
    ///
    /// ```
    /// use schematic::geom::Point;
    /// let p = Point::new(32, -16);
    /// assert_eq!(p.x, 32);
    /// ```
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Component-wise addition.
    pub const fn offset(self, dx: i64, dy: i64) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// True when the point lies on the given grid pitch (both axes).
    pub fn on_grid(self, pitch: i64) -> bool {
        pitch > 0 && self.x % pitch == 0 && self.y % pitch == 0
    }

    /// Snaps each coordinate to the nearest multiple of `pitch`.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    pub fn snapped(self, pitch: i64) -> Point {
        assert!(pitch > 0, "grid pitch must be positive");
        let snap = |v: i64| {
            let d = v.div_euclid(pitch);
            let r = v.rem_euclid(pitch);
            if 2 * r >= pitch {
                (d + 1) * pitch
            } else {
                d * pitch
            }
        };
        Point::new(snap(self.x), snap(self.y))
    }

    /// Scales by the exact rational `num/den`, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scaled(self, num: i64, den: i64) -> Point {
        assert!(den != 0, "scale denominator must be nonzero");
        let mul = |v: i64| {
            let p = v * num;
            let (q, r) = (p.div_euclid(den), p.rem_euclid(den));
            if 2 * r >= den {
                q + 1
            } else {
                q
            }
        };
        Point::new(mul(self.x), mul(self.y))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// Axis-aligned bounding box, inclusive of its corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BBox {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl BBox {
    /// A degenerate box containing only `p`.
    pub const fn at(p: Point) -> Self {
        BBox { lo: p, hi: p }
    }

    /// Box spanning two arbitrary corners.
    pub fn spanning(a: Point, b: Point) -> Self {
        BBox {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Expands to include `p`, returning the enlarged box.
    pub fn including(self, p: Point) -> Self {
        BBox {
            lo: Point::new(self.lo.x.min(p.x), self.lo.y.min(p.y)),
            hi: Point::new(self.hi.x.max(p.x), self.hi.y.max(p.y)),
        }
    }

    /// Union of two boxes.
    pub fn union(self, other: BBox) -> Self {
        self.including(other.lo).including(other.hi)
    }

    /// Width in DBU.
    pub fn width(self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height in DBU.
    pub fn height(self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// True when the two boxes share any point.
    pub fn intersects(self, other: BBox) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }
}

/// The eight schematic orientations: four rotations optionally preceded by
/// a mirror about the X axis. These are the "rotation codes" the paper's
/// symbol-replacement maps carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Orient {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
    /// Mirror about the X axis (flip vertically).
    MX,
    /// Mirror about X, then rotate 90° CCW.
    MXR90,
    /// Mirror about the Y axis (flip horizontally).
    MY,
    /// Mirror about Y, then rotate 90° CCW.
    MYR90,
}

impl Orient {
    /// All eight orientations, in canonical order.
    pub const ALL: [Orient; 8] = [
        Orient::R0,
        Orient::R90,
        Orient::R180,
        Orient::R270,
        Orient::MX,
        Orient::MXR90,
        Orient::MY,
        Orient::MYR90,
    ];

    /// Applies this orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        let Point { x, y } = p;
        match self {
            Orient::R0 => Point::new(x, y),
            Orient::R90 => Point::new(-y, x),
            Orient::R180 => Point::new(-x, -y),
            Orient::R270 => Point::new(y, -x),
            Orient::MX => Point::new(x, -y),
            Orient::MXR90 => Point::new(y, x),
            Orient::MY => Point::new(-x, y),
            Orient::MYR90 => Point::new(-y, -x),
        }
    }

    /// Composes two orientations: `self.compose(then)` first applies
    /// `self`, then `then`.
    pub fn compose(self, then: Orient) -> Orient {
        // Determined by applying both to basis vectors.
        let e1 = then.apply(self.apply(Point::new(1, 0)));
        let e2 = then.apply(self.apply(Point::new(0, 1)));
        for o in Orient::ALL {
            if o.apply(Point::new(1, 0)) == e1 && o.apply(Point::new(0, 1)) == e2 {
                return o;
            }
        }
        unreachable!("orientation composition is closed over the 8 codes")
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orient {
        for o in Orient::ALL {
            if self.compose(o) == Orient::R0 {
                return o;
            }
        }
        unreachable!("every orientation has an inverse")
    }

    /// True for the four mirrored codes.
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orient::MX | Orient::MXR90 | Orient::MY | Orient::MYR90
        )
    }

    /// Short vendor-style code, e.g. `"R90"` or `"MXR90"`.
    pub fn code(self) -> &'static str {
        match self {
            Orient::R0 => "R0",
            Orient::R90 => "R90",
            Orient::R180 => "R180",
            Orient::R270 => "R270",
            Orient::MX => "MX",
            Orient::MXR90 => "MXR90",
            Orient::MY => "MY",
            Orient::MYR90 => "MYR90",
        }
    }

    /// Parses a vendor rotation code.
    pub fn parse(code: &str) -> Option<Orient> {
        Orient::ALL.into_iter().find(|o| o.code() == code)
    }
}

impl std::fmt::Display for Orient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A rigid placement transform: orientation about the origin followed by
/// translation to `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Translation applied after orientation.
    pub origin: Point,
    /// Orientation applied about the local origin.
    pub orient: Orient,
}

impl Transform {
    /// Creates a transform from a placement origin and orientation.
    pub const fn new(origin: Point, orient: Orient) -> Self {
        Transform { origin, orient }
    }

    /// Maps a local-space point to sheet space.
    pub fn apply(self, p: Point) -> Point {
        let r = self.orient.apply(p);
        r.offset(self.origin.x, self.origin.y)
    }

    /// Composes with another transform applied afterwards, so that
    /// `self.then(outer).apply(p) == outer.apply(self.apply(p))`.
    pub fn then(self, outer: Transform) -> Transform {
        Transform {
            origin: outer.apply(self.origin),
            orient: self.orient.compose(outer.orient),
        }
    }

    /// Inverse transform, such that `t.inverse().apply(t.apply(p)) == p`.
    pub fn inverse(self) -> Transform {
        let inv = self.orient.inverse();
        Transform {
            origin: inv.apply(Point::new(-self.origin.x, -self.origin.y)),
            orient: inv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_snapping_rounds_to_nearest() {
        assert_eq!(Point::new(7, 9).snapped(16), Point::new(0, 16));
        assert_eq!(Point::new(8, -8).snapped(16), Point::new(16, 0));
        assert_eq!(Point::new(-9, -7).snapped(16), Point::new(-16, 0));
    }

    #[test]
    fn point_scaling_is_exact_on_grid() {
        // Viewstar grid (16 DBU) scaled by 5/8 lands on Cascade grid (10).
        let p = Point::new(16 * 3, 16 * 7).scaled(5, 8);
        assert_eq!(p, Point::new(30, 70));
        assert!(p.on_grid(10));
    }

    #[test]
    fn orientation_composition_has_identity_and_inverses() {
        for o in Orient::ALL {
            assert_eq!(o.compose(Orient::R0), o);
            assert_eq!(Orient::R0.compose(o), o);
            assert_eq!(o.compose(o.inverse()), Orient::R0);
        }
    }

    #[test]
    fn rotations_compose_like_the_cyclic_group() {
        assert_eq!(Orient::R90.compose(Orient::R90), Orient::R180);
        assert_eq!(Orient::R90.compose(Orient::R270), Orient::R0);
        assert_eq!(Orient::R180.compose(Orient::R180), Orient::R0);
    }

    #[test]
    fn mirrors_are_involutions() {
        assert_eq!(Orient::MX.compose(Orient::MX), Orient::R0);
        assert_eq!(Orient::MY.compose(Orient::MY), Orient::R0);
    }

    #[test]
    fn transform_round_trips_points() {
        let t = Transform::new(Point::new(100, -40), Orient::MXR90);
        let p = Point::new(13, 57);
        assert_eq!(t.inverse().apply(t.apply(p)), p);
    }

    #[test]
    fn orient_codes_round_trip() {
        for o in Orient::ALL {
            assert_eq!(Orient::parse(o.code()), Some(o));
        }
        assert_eq!(Orient::parse("R45"), None);
    }

    #[test]
    fn bbox_union_and_containment() {
        let b = BBox::at(Point::new(0, 0)).including(Point::new(10, 20));
        assert!(b.contains(Point::new(5, 5)));
        assert!(!b.contains(Point::new(11, 5)));
        let c = b.union(BBox::at(Point::new(-5, 30)));
        assert_eq!(c.lo, Point::new(-5, 0));
        assert_eq!(c.hi, Point::new(10, 30));
        assert_eq!(c.width(), 15);
        assert_eq!(c.height(), 30);
    }

    #[test]
    fn bbox_intersection_is_symmetric() {
        let a = BBox::spanning(Point::new(0, 0), Point::new(10, 10));
        let b = BBox::spanning(Point::new(10, 10), Point::new(20, 20));
        let c = BBox::spanning(Point::new(11, 0), Point::new(20, 9));
        assert!(a.intersects(b) && b.intersects(a));
        assert!(!a.intersects(c) && !c.intersects(a));
    }
}
