//! Canonical netlists and netlist comparison.
//!
//! Section 2's closing point: "design data translations must be
//! independently verified". The canonical netlist is the tool-neutral
//! form both the source and translated schematics are reduced to; the
//! comparison here is the independent verifier.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use interop_core::intern::IStr;

/// A reference to one pin of one instance. Both parts are interned —
/// a netlist names each instance and pin many times over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinRef {
    /// Instance name.
    pub inst: IStr,
    /// Pin name on the instance's symbol.
    pub pin: IStr,
}

impl PinRef {
    /// Creates a pin reference.
    pub fn new(inst: impl Into<IStr>, pin: impl Into<IStr>) -> Self {
        PinRef {
            inst: inst.into(),
            pin: pin.into(),
        }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.inst, self.pin)
    }
}

/// One net of a cell netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetInfo {
    /// Instance pins on the net.
    pub pins: BTreeSet<PinRef>,
    /// True for global nets (power rails etc.).
    pub is_global: bool,
    /// Port names through which this net is visible to the parent cell
    /// (empty for internal nets).
    pub ports: BTreeSet<String>,
}

/// The netlist of one cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellNetlist {
    /// Nets by canonical name.
    pub nets: BTreeMap<String, NetInfo>,
    /// Instance name → referenced cell (symbol cell name).
    pub instances: BTreeMap<IStr, IStr>,
}

impl CellNetlist {
    /// The net a given instance pin connects to, if any.
    pub fn net_of(&self, pin: &PinRef) -> Option<&str> {
        self.nets
            .iter()
            .find(|(_, n)| n.pins.contains(pin))
            .map(|(name, _)| name.as_str())
    }

    /// Pins left unconnected: instance pins referenced by no net are not
    /// representable here, so this reports nets with exactly one pin and
    /// no port/global attachment — the usual dangling-net symptom.
    pub fn dangling_nets(&self) -> Vec<&str> {
        self.nets
            .iter()
            .filter(|(_, n)| n.pins.len() <= 1 && n.ports.is_empty() && !n.is_global)
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

/// A design-wide canonical netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    /// Design name.
    pub design: String,
    /// Cell netlists by cell name.
    pub cells: BTreeMap<String, CellNetlist>,
}

impl Netlist {
    /// Creates an empty netlist for a design name.
    pub fn new(design: impl Into<String>) -> Self {
        Netlist {
            design: design.into(),
            cells: BTreeMap::new(),
        }
    }

    /// Total net count across cells.
    pub fn net_count(&self) -> usize {
        self.cells.values().map(|c| c.nets.len()).sum()
    }

    /// Total pin-connection count across cells.
    pub fn pin_count(&self) -> usize {
        self.cells
            .values()
            .flat_map(|c| c.nets.values())
            .map(|n| n.pins.len())
            .sum()
    }
}

/// One discrepancy found by netlist comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistDiff {
    /// A cell present on one side only.
    CellOnlyIn {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// Cell name.
        cell: String,
    },
    /// An instance present on one side only.
    InstanceOnlyIn {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// Cell name.
        cell: String,
        /// Instance name.
        inst: String,
    },
    /// An instance references different cells on the two sides.
    InstanceRetargeted {
        /// Cell name.
        cell: String,
        /// Instance name.
        inst: String,
        /// Referenced cell on the left.
        left: String,
        /// Referenced cell on the right.
        right: String,
    },
    /// A net whose pin set exists on the left but matches nothing on the
    /// right (or vice versa) — a genuine connectivity change.
    NetUnmatched {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// Cell name.
        cell: String,
        /// Net name on that side.
        net: String,
        /// The pins of the unmatched net.
        pins: Vec<String>,
    },
}

impl fmt::Display for NetlistDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistDiff::CellOnlyIn { side, cell } => write!(f, "cell `{cell}` only in {side}"),
            NetlistDiff::InstanceOnlyIn { side, cell, inst } => {
                write!(f, "{cell}: instance `{inst}` only in {side}")
            }
            NetlistDiff::InstanceRetargeted {
                cell,
                inst,
                left,
                right,
            } => write!(f, "{cell}: instance `{inst}` is `{left}` vs `{right}`"),
            NetlistDiff::NetUnmatched {
                side,
                cell,
                net,
                pins,
            } => write!(
                f,
                "{cell}: net `{net}` in {side} unmatched (pins: {})",
                pins.join(" ")
            ),
        }
    }
}

/// Result of a netlist comparison: the name mapping discovered plus all
/// discrepancies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompareReport {
    /// Per-cell mapping from left net name to the structurally equal
    /// right net name.
    pub net_mapping: BTreeMap<String, BTreeMap<String, String>>,
    /// All discrepancies, empty when the netlists are equivalent.
    pub diffs: Vec<NetlistDiff>,
}

impl CompareReport {
    /// True when no discrepancies were found.
    pub fn is_equivalent(&self) -> bool {
        self.diffs.is_empty()
    }
}

/// Compares two netlists **structurally**: instance names must match and
/// every net on each side must have a pin-set-identical partner on the
/// other, but net *names* may differ freely (translation legitimately
/// renames nets — e.g. dropping Viewstar postfix indicators).
///
/// Nets with no pins on either side are ignored.
pub fn compare(left: &Netlist, right: &Netlist) -> CompareReport {
    let mut report = CompareReport::default();

    for cell in left.cells.keys() {
        if !right.cells.contains_key(cell) {
            report.diffs.push(NetlistDiff::CellOnlyIn {
                side: "left",
                cell: cell.clone(),
            });
        }
    }
    for cell in right.cells.keys() {
        if !left.cells.contains_key(cell) {
            report.diffs.push(NetlistDiff::CellOnlyIn {
                side: "right",
                cell: cell.clone(),
            });
        }
    }

    for (cell, lc) in &left.cells {
        let Some(rc) = right.cells.get(cell) else {
            continue;
        };

        for (inst, lref) in &lc.instances {
            match rc.instances.get(inst) {
                None => report.diffs.push(NetlistDiff::InstanceOnlyIn {
                    side: "left",
                    cell: cell.clone(),
                    inst: inst.as_str().to_string(),
                }),
                Some(rref) if rref != lref => report.diffs.push(NetlistDiff::InstanceRetargeted {
                    cell: cell.clone(),
                    inst: inst.as_str().to_string(),
                    left: lref.as_str().to_string(),
                    right: rref.as_str().to_string(),
                }),
                Some(_) => {}
            }
        }
        for inst in rc.instances.keys() {
            if !lc.instances.contains_key(inst) {
                report.diffs.push(NetlistDiff::InstanceOnlyIn {
                    side: "right",
                    cell: cell.clone(),
                    inst: inst.as_str().to_string(),
                });
            }
        }

        // Structural matching: key each net by its pin set.
        let mut right_by_pins: BTreeMap<&BTreeSet<PinRef>, Vec<&str>> = BTreeMap::new();
        for (name, info) in &rc.nets {
            if info.pins.is_empty() {
                continue;
            }
            right_by_pins.entry(&info.pins).or_default().push(name);
        }

        let mapping = report.net_mapping.entry(cell.clone()).or_default();
        let mut used_right: BTreeSet<&str> = BTreeSet::new();

        for (lname, linfo) in &lc.nets {
            if linfo.pins.is_empty() {
                continue;
            }
            let candidate = right_by_pins
                .get(&linfo.pins)
                .and_then(|names| names.iter().find(|n| !used_right.contains(**n)).copied());
            match candidate {
                Some(rname) => {
                    used_right.insert(rname);
                    mapping.insert(lname.clone(), rname.to_string());
                }
                None => report.diffs.push(NetlistDiff::NetUnmatched {
                    side: "left",
                    cell: cell.clone(),
                    net: lname.clone(),
                    pins: linfo.pins.iter().map(|p| p.to_string()).collect(),
                }),
            }
        }
        for (rname, rinfo) in &rc.nets {
            if rinfo.pins.is_empty() || used_right.contains(rname.as_str()) {
                continue;
            }
            report.diffs.push(NetlistDiff::NetUnmatched {
                side: "right",
                cell: cell.clone(),
                net: rname.clone(),
                pins: rinfo.pins.iter().map(|p| p.to_string()).collect(),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(pins: &[(&str, &str)]) -> NetInfo {
        NetInfo {
            pins: pins.iter().map(|(i, p)| PinRef::new(*i, *p)).collect(),
            ..NetInfo::default()
        }
    }

    fn simple(names: [&str; 2]) -> Netlist {
        let mut nl = Netlist::new("d");
        let mut cell = CellNetlist::default();
        cell.instances.insert("I1".into(), "inv".into());
        cell.instances.insert("I2".into(), "inv".into());
        cell.nets
            .insert(names[0].into(), net(&[("I1", "Y"), ("I2", "A")]));
        cell.nets.insert(names[1].into(), net(&[("I2", "Y")]));
        nl.cells.insert("top".into(), cell);
        nl
    }

    #[test]
    fn identical_netlists_are_equivalent() {
        let a = simple(["n1", "n2"]);
        let r = compare(&a, &a.clone());
        assert!(r.is_equivalent());
    }

    #[test]
    fn renamed_nets_still_match_structurally() {
        let a = simple(["mid-", "out"]);
        let b = simple(["mid", "out"]);
        let r = compare(&a, &b);
        assert!(r.is_equivalent(), "diffs: {:?}", r.diffs);
        assert_eq!(r.net_mapping["top"]["mid-"], "mid");
    }

    #[test]
    fn moved_pin_is_detected() {
        let a = simple(["n1", "n2"]);
        let mut b = simple(["n1", "n2"]);
        let cell = b.cells.get_mut("top").unwrap();
        let info = cell.nets.get_mut("n2").unwrap();
        info.pins.insert(PinRef::new("I1", "A"));
        let r = compare(&a, &b);
        assert!(!r.is_equivalent());
        assert!(r
            .diffs
            .iter()
            .any(|d| matches!(d, NetlistDiff::NetUnmatched { .. })));
    }

    #[test]
    fn missing_instance_is_detected() {
        let a = simple(["n1", "n2"]);
        let mut b = simple(["n1", "n2"]);
        b.cells.get_mut("top").unwrap().instances.remove("I2");
        let r = compare(&a, &b);
        assert!(r
            .diffs
            .iter()
            .any(|d| matches!(d, NetlistDiff::InstanceOnlyIn { side: "left", .. })));
    }

    #[test]
    fn retargeted_instance_is_detected() {
        let a = simple(["n1", "n2"]);
        let mut b = simple(["n1", "n2"]);
        *b.cells
            .get_mut("top")
            .unwrap()
            .instances
            .get_mut("I1")
            .unwrap() = "nand2".into();
        let r = compare(&a, &b);
        assert!(r
            .diffs
            .iter()
            .any(|d| matches!(d, NetlistDiff::InstanceRetargeted { .. })));
    }

    #[test]
    fn dangling_net_detection() {
        let mut cell = CellNetlist::default();
        cell.nets.insert("loner".into(), net(&[("I1", "Y")]));
        let mut port_net = net(&[("I2", "A")]);
        port_net.ports.insert("OUT".into());
        cell.nets.insert("out".into(), port_net);
        assert_eq!(cell.dangling_nets(), vec!["loner"]);
    }

    #[test]
    fn net_of_finds_owner() {
        let mut cell = CellNetlist::default();
        cell.nets.insert("n".into(), net(&[("I1", "Y")]));
        assert_eq!(cell.net_of(&PinRef::new("I1", "Y")), Some("n"));
        assert_eq!(cell.net_of(&PinRef::new("I9", "Y")), None);
    }
}
