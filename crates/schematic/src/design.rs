//! Designs: libraries plus hierarchical schematic cells.

use std::collections::{BTreeMap, BTreeSet};

use interop_core::intern::{intern, IStr};

use crate::dialect::DialectId;
use crate::sheet::Sheet;
use crate::symbol::{SymbolDef, SymbolPin, SymbolRef};

/// A named collection of symbol definitions, keyed by `(cell, view)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Library {
    /// Library name (interned; shared by every symbol reference).
    pub name: IStr,
    symbols: BTreeMap<(IStr, IStr), SymbolDef>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<IStr>) -> Self {
        Library {
            name: name.into(),
            symbols: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a symbol. The symbol's own reference supplies
    /// the `(cell, view)` key; its library field is rewritten to match
    /// this library.
    pub fn add(&mut self, mut sym: SymbolDef) {
        sym.reference.library = self.name.clone();
        self.symbols.insert(
            (sym.reference.cell.clone(), sym.reference.view.clone()),
            sym,
        );
    }

    /// Looks up a symbol by cell and view name.
    pub fn symbol(&self, cell: &str, view: &str) -> Option<&SymbolDef> {
        self.symbols.get(&(intern(cell), intern(view)))
    }

    /// Iterates over all symbols in key order.
    pub fn iter(&self) -> impl Iterator<Item = &SymbolDef> {
        self.symbols.values()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the library holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// The schematic view of one cell: its pages, declared buses, and ports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSchematic {
    /// Cell name.
    pub cell: String,
    /// Drawing pages in page order.
    pub sheets: Vec<Sheet>,
    /// Base names of buses declared in this cell — the scope used to
    /// resolve Viewstar's condensed bus syntax.
    pub buses: BTreeSet<IStr>,
    /// The cell's interface ports (mirrors the pins of its symbol).
    pub ports: Vec<SymbolPin>,
}

impl CellSchematic {
    /// Creates an empty schematic for `cell`.
    pub fn new(cell: impl Into<String>) -> Self {
        CellSchematic {
            cell: cell.into(),
            ..CellSchematic::default()
        }
    }

    /// Gets a sheet by page number.
    pub fn sheet(&self, page: u32) -> Option<&Sheet> {
        self.sheets.iter().find(|s| s.page == page)
    }

    /// Gets a mutable sheet by page number.
    pub fn sheet_mut(&mut self, page: u32) -> Option<&mut Sheet> {
        self.sheets.iter_mut().find(|s| s.page == page)
    }

    /// Total instance count across all pages.
    pub fn instance_count(&self) -> usize {
        self.sheets.iter().map(|s| s.instances.len()).sum()
    }

    /// Total wire count across all pages.
    pub fn wire_count(&self) -> usize {
        self.sheets.iter().map(|s| s.wires.len()).sum()
    }
}

/// A complete schematic design: libraries, cells, a top cell, and the
/// set of global net names.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Which dialect's conventions this design is drawn in.
    pub dialect: DialectId,
    libraries: BTreeMap<IStr, Library>,
    cells: BTreeMap<String, CellSchematic>,
    /// Name of the top-level cell.
    pub top: String,
    globals: BTreeSet<IStr>,
}

impl Design {
    /// Creates an empty design in the given dialect.
    pub fn new(name: impl Into<String>, dialect: DialectId) -> Self {
        Design {
            name: name.into(),
            dialect,
            libraries: BTreeMap::new(),
            cells: BTreeMap::new(),
            top: String::new(),
            globals: BTreeSet::new(),
        }
    }

    /// Adds (or replaces) a library.
    pub fn add_library(&mut self, lib: Library) {
        self.libraries.insert(lib.name.clone(), lib);
    }

    /// Adds (or replaces) a cell schematic. The first cell added becomes
    /// the top cell unless [`Design::set_top`] overrides it.
    pub fn add_cell(&mut self, cell: CellSchematic) {
        if self.top.is_empty() {
            self.top = cell.cell.clone();
        }
        self.cells.insert(cell.cell.clone(), cell);
    }

    /// Declares a global net (e.g. `VDD`).
    pub fn add_global(&mut self, name: impl Into<IStr>) {
        self.globals.insert(name.into());
    }

    /// Renames a declared global. Returns `false` when `from` is not a
    /// global (the set is unchanged).
    pub fn rename_global(&mut self, from: &str, to: impl Into<IStr>) -> bool {
        if self.globals.remove(from) {
            self.globals.insert(to.into());
            true
        } else {
            false
        }
    }

    /// Sets the top cell.
    pub fn set_top(&mut self, cell: impl Into<String>) {
        self.top = cell.into();
    }

    /// Library lookup by name.
    pub fn library(&self, name: &str) -> Option<&Library> {
        self.libraries.get(name)
    }

    /// Mutable library lookup by name.
    pub fn library_mut(&mut self, name: &str) -> Option<&mut Library> {
        self.libraries.get_mut(name)
    }

    /// Iterates over libraries in name order.
    pub fn libraries(&self) -> impl Iterator<Item = &Library> {
        self.libraries.values()
    }

    /// Cell lookup by name.
    pub fn cell(&self, name: &str) -> Option<&CellSchematic> {
        self.cells.get(name)
    }

    /// Mutable cell lookup by name.
    pub fn cell_mut(&mut self, name: &str) -> Option<&mut CellSchematic> {
        self.cells.get_mut(name)
    }

    /// Iterates over `(name, cell)` pairs in name order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, &CellSchematic)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over cells mutably.
    pub fn cells_mut(&mut self) -> impl Iterator<Item = &mut CellSchematic> {
        self.cells.values_mut()
    }

    /// The set of global net names.
    pub fn globals(&self) -> &BTreeSet<IStr> {
        &self.globals
    }

    /// Resolves a symbol reference against the design's libraries.
    pub fn resolve_symbol(&self, r: &SymbolRef) -> Option<&SymbolDef> {
        self.libraries.get(&r.library)?.symbol(&r.cell, &r.view)
    }

    /// True when instances of `r` are hierarchical (the referenced cell
    /// has a schematic view in this design).
    pub fn is_hierarchical(&self, r: &SymbolRef) -> bool {
        self.cells.contains_key(r.cell.as_str())
    }

    /// Cells in bottom-up dependency order (leaves first, top last).
    /// Cells involved in a reference cycle are appended at the end in
    /// name order; genuine schematic hierarchies are acyclic.
    pub fn cells_bottom_up(&self) -> Vec<&str> {
        let mut order: Vec<&str> = Vec::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        // Kahn-style: repeatedly take cells whose children are all done.
        loop {
            let mut progressed = false;
            for (name, cell) in &self.cells {
                if done.contains(name.as_str()) {
                    continue;
                }
                let ready = cell
                    .sheets
                    .iter()
                    .flat_map(|s| &s.instances)
                    .filter(|i| self.is_hierarchical(&i.symbol))
                    .all(|i| done.contains(i.symbol.cell.as_str()) || i.symbol.cell == *name);
                if ready {
                    order.push(name);
                    done.insert(name);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for name in self.cells.keys() {
            if !done.contains(name.as_str()) {
                order.push(name);
            }
        }
        order
    }

    /// Total counts `(cells, instances, wires, labels, connectors)` —
    /// used by migration reports.
    pub fn stats(&self) -> DesignStats {
        let mut s = DesignStats {
            cells: self.cells.len(),
            ..DesignStats::default()
        };
        for cell in self.cells.values() {
            for sheet in &cell.sheets {
                s.instances += sheet.instances.len();
                s.wires += sheet.wires.len();
                s.labels += sheet.wires.iter().filter(|w| w.label.is_some()).count()
                    + sheet.annotations.len();
                s.connectors += sheet.connectors.len();
            }
        }
        s
    }
}

/// Size summary of a design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesignStats {
    /// Number of schematic cells.
    pub cells: usize,
    /// Total component instances.
    pub instances: usize,
    /// Total wires.
    pub wires: usize,
    /// Total labels (net labels plus annotations).
    pub labels: usize,
    /// Total connector objects.
    pub connectors: usize,
}

impl std::fmt::Display for DesignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells, {} instances, {} wires, {} labels, {} connectors",
            self.cells, self.instances, self.wires, self.labels, self.connectors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Orient, Point};
    use crate::sheet::Instance;
    use crate::symbol::PinDir;

    fn tiny_design() -> Design {
        let mut d = Design::new("tiny", DialectId::Viewstar);
        let mut lib = Library::new("basiclib");
        lib.add(
            SymbolDef::new(SymbolRef::new("basiclib", "inv", "symbol"), 16)
                .with_pin("A", Point::new(0, 0), PinDir::Input)
                .with_pin("Y", Point::new(64, 0), PinDir::Output),
        );
        d.add_library(lib);

        let mut leaf = CellSchematic::new("buf2");
        leaf.sheets.push(Sheet::new(1));
        let mut top = CellSchematic::new("top");
        let mut sheet = Sheet::new(1);
        sheet.instances.push(Instance::new(
            "X1",
            SymbolRef::new("userlib", "buf2", "symbol"),
            Point::new(0, 0),
            Orient::R0,
        ));
        top.sheets.push(sheet);
        d.add_cell(top);
        d.add_cell(leaf);
        d.set_top("top");
        d
    }

    #[test]
    fn symbol_resolution_and_hierarchy() {
        let d = tiny_design();
        assert!(d
            .resolve_symbol(&SymbolRef::new("basiclib", "inv", "symbol"))
            .is_some());
        assert!(d
            .resolve_symbol(&SymbolRef::new("basiclib", "nand9", "symbol"))
            .is_none());
        assert!(d.is_hierarchical(&SymbolRef::new("userlib", "buf2", "symbol")));
        assert!(!d.is_hierarchical(&SymbolRef::new("basiclib", "inv", "symbol")));
    }

    #[test]
    fn bottom_up_order_puts_leaves_first() {
        let d = tiny_design();
        let order = d.cells_bottom_up();
        let buf_pos = order.iter().position(|c| *c == "buf2").unwrap();
        let top_pos = order.iter().position(|c| *c == "top").unwrap();
        assert!(buf_pos < top_pos);
    }

    #[test]
    fn stats_count_everything() {
        let d = tiny_design();
        let s = d.stats();
        assert_eq!(s.cells, 2);
        assert_eq!(s.instances, 1);
    }

    #[test]
    fn library_add_rewrites_owner() {
        let mut lib = Library::new("mylib");
        lib.add(SymbolDef::new(SymbolRef::new("other", "c", "v"), 16));
        assert_eq!(lib.symbol("c", "v").unwrap().reference.library, "mylib");
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
    }
}
