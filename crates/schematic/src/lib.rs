//! # schematic — a two-dialect schematic-capture substrate
//!
//! This crate is the schematic-tool substrate for the CAD-interoperability
//! workbench reproducing *Issues and Answers in CAD Tool Interoperability*
//! (DAC 1996). It models everything Section 2 of that paper needs:
//!
//! * geometry on an exact integer grid ([`geom`]),
//! * symbols, sheets, hierarchy and properties ([`symbol`], [`sheet`],
//!   [`design`], [`property`]),
//! * two vendor *dialects* with deliberately different conventions —
//!   grid pitch, bus syntax, implicit-vs-explicit page connection, fonts
//!   ([`dialect`], [`bus`]),
//! * on-disk formats for both dialects ([`viewstar`], [`cascade`]),
//! * connectivity extraction to a canonical netlist plus structural
//!   netlist comparison — the independent verifier ([`connectivity`],
//!   [`netlist`]),
//! * a parameterized synthetic-design generator ([`gen`]).
//!
//! ## Example
//!
//! ```
//! use schematic::gen::{generate, GenConfig};
//! use schematic::dialect::DialectRules;
//! use schematic::connectivity::extract_design;
//!
//! let design = generate(&GenConfig::default());
//! let (netlist, errors) = extract_design(&design, &DialectRules::viewstar());
//! assert!(errors.is_empty());
//! assert!(netlist.net_count() > 0);
//! ```

pub mod bus;
pub mod cascade;
pub mod connectivity;
pub mod design;
pub mod dialect;
pub mod gen;
pub mod geom;
pub mod netlist;
pub mod neutral;
pub mod parse;
pub mod property;
pub mod sheet;
pub mod stable;
pub mod symbol;
pub mod viewstar;

pub use design::{CellSchematic, Design, Library};
pub use dialect::{DialectId, DialectRules};
pub use geom::{Orient, Point, Transform};
pub use netlist::{compare, CompareReport, Netlist, PinRef};
pub use parse::{ParseError, SourcePos};
