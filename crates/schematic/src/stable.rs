//! [`StableHash`] implementations for the schematic data model.
//!
//! A design's stable digest is the cache key the migration cache and
//! the batch checkpoint layer share: same design content, same 64-bit
//! value, on every run and every host. Everything that affects migration
//! output is hashed — names, geometry, properties, globals, buses,
//! dialect — in the deterministic orders the model already maintains
//! (`BTreeMap`/`BTreeSet` iteration, vector order).

use interop_core::hash::{StableHash, StableHasher};

use crate::design::{CellSchematic, Design, Library};
use crate::dialect::DialectId;
use crate::geom::{BBox, Orient, Point, Transform};
use crate::property::{FontMetrics, Justify, Label, PropMap, PropValue, TextOrigin};
use crate::sheet::{Connector, ConnectorKind, Instance, Sheet, Wire};
use crate::symbol::{PinDir, SymbolDef, SymbolPin, SymbolRef};

impl StableHash for Point {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(self.x);
        h.write_i64(self.y);
    }
}

impl StableHash for BBox {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.lo.stable_hash(h);
        self.hi.stable_hash(h);
    }
}

impl StableHash for Orient {
    fn stable_hash(&self, h: &mut StableHasher) {
        // The vendor code is the stable name; enum discriminants are a
        // refactoring hazard.
        h.write_str(self.code());
    }
}

impl StableHash for Transform {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.origin.stable_hash(h);
        self.orient.stable_hash(h);
    }
}

impl StableHash for DialectId {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(match self {
            DialectId::Viewstar => "viewstar",
            DialectId::Cascade => "cascade",
        });
    }
}

impl StableHash for PinDir {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self.keyword());
    }
}

impl StableHash for ConnectorKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self.keyword());
    }
}

impl StableHash for PropValue {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            PropValue::Text(s) => {
                h.write_u8(0);
                h.write_str(s);
            }
            PropValue::Int(i) => {
                h.write_u8(1);
                h.write_i64(*i);
            }
            PropValue::Real(r) => {
                h.write_u8(2);
                h.write_f64(*r);
            }
            PropValue::Flag(b) => {
                h.write_u8(3);
                h.write_u8(*b as u8);
            }
        }
    }
}

impl StableHash for PropMap {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for (k, v) in self.iter() {
            h.write_str(k);
            v.stable_hash(h);
        }
    }
}

impl StableHash for TextOrigin {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            TextOrigin::Baseline => 0,
            TextOrigin::BelowBaseline => 1,
        });
    }
}

impl StableHash for FontMetrics {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(self.height);
        h.write_i64(self.width);
        self.origin.stable_hash(h);
        h.write_i64(self.baseline_offset);
    }
}

impl StableHash for Justify {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            Justify::Left => 0,
            Justify::Center => 1,
            Justify::Right => 2,
        });
    }
}

impl StableHash for Label {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.text.stable_hash(h);
        self.at.stable_hash(h);
        self.font.stable_hash(h);
        self.justify.stable_hash(h);
    }
}

impl StableHash for SymbolRef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.library.stable_hash(h);
        self.cell.stable_hash(h);
        self.view.stable_hash(h);
    }
}

impl StableHash for SymbolPin {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.at.stable_hash(h);
        self.dir.stable_hash(h);
    }
}

impl StableHash for SymbolDef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.reference.stable_hash(h);
        self.pins.stable_hash(h);
        self.body.stable_hash(h);
        h.write_i64(self.grid);
        self.default_props.stable_hash(h);
    }
}

impl StableHash for Library {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        h.write_usize(self.len());
        for sym in self.iter() {
            sym.stable_hash(h);
        }
    }
}

impl StableHash for Instance {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.symbol.stable_hash(h);
        self.place.stable_hash(h);
        self.props.stable_hash(h);
    }
}

impl StableHash for Wire {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.points.stable_hash(h);
        self.label.stable_hash(h);
    }
}

impl StableHash for Connector {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.kind.stable_hash(h);
        self.name.stable_hash(h);
        self.at.stable_hash(h);
        self.orient.stable_hash(h);
    }
}

impl StableHash for Sheet {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.page);
        self.frame.stable_hash(h);
        self.instances.stable_hash(h);
        self.wires.stable_hash(h);
        self.connectors.stable_hash(h);
        self.annotations.stable_hash(h);
    }
}

impl StableHash for CellSchematic {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.cell);
        self.sheets.stable_hash(h);
        self.buses.stable_hash(h);
        self.ports.stable_hash(h);
    }
}

impl StableHash for Design {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        self.dialect.stable_hash(h);
        h.write_usize(self.libraries().count());
        for lib in self.libraries() {
            lib.stable_hash(h);
        }
        h.write_usize(self.cells().count());
        for (name, cell) in self.cells() {
            h.write_str(name);
            cell.stable_hash(h);
        }
        h.write_str(&self.top);
        self.globals().stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use interop_core::hash::hash_of;

    use crate::gen::{generate, GenConfig};

    #[test]
    fn digest_is_stable_across_clones_and_regeneration() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig::default());
        assert_eq!(hash_of(&a), hash_of(&b), "same generator, same digest");
        assert_eq!(hash_of(&a), hash_of(&a.clone()));
    }

    #[test]
    fn any_edit_changes_the_digest() {
        let base = generate(&GenConfig::default());
        let h0 = hash_of(&base);

        let mut renamed = base.clone();
        renamed.name.push('x');
        assert_ne!(hash_of(&renamed), h0, "design name is hashed");

        let mut moved = base.clone();
        let cell_name = moved.cells().next().unwrap().0.to_string();
        let cell = moved.cell_mut(&cell_name).unwrap();
        if let Some(inst) = cell.sheets[0].instances.first_mut() {
            inst.place.origin.x += 1;
            assert_ne!(hash_of(&moved), h0, "geometry is hashed");
        }

        let mut glob = base.clone();
        glob.add_global("AVDD");
        assert_ne!(hash_of(&glob), h0, "globals are hashed");

        let mut prop = base.clone();
        let cell_name = prop.cells().next().unwrap().0.to_string();
        let cell = prop.cell_mut(&cell_name).unwrap();
        if let Some(inst) = cell.sheets[0].instances.first_mut() {
            inst.props.set("CACHE_TEST", 1i64);
            assert_ne!(hash_of(&prop), h0, "properties are hashed");
        }
    }

    #[test]
    fn dialect_is_part_of_the_digest() {
        let a = generate(&GenConfig::default());
        let mut b = a.clone();
        b.dialect = crate::dialect::DialectId::Cascade;
        assert_ne!(hash_of(&a), hash_of(&b));
    }
}
