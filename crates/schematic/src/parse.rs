//! One typed parse error shared by every schematic file format.
//!
//! [`crate::cascade::parse`] and [`crate::viewstar::parse`] both return
//! [`ParseError`], so callers juggling multiple interchange formats
//! handle one error type with uniform source-position reporting.

use std::fmt;

/// A 1-based position in the source text. `column` is 1 when the
/// format only tracks line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Error parsing a schematic interchange file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Which format was being parsed (`"cascade"`, `"viewstar"`, ...).
    pub format: &'static str,
    /// Problem description.
    pub message: String,
    /// Where in the source text, when known.
    pub pos: Option<SourcePos>,
}

impl ParseError {
    /// An error with no position information.
    pub fn new(format: &'static str, message: impl Into<String>) -> Self {
        ParseError {
            format,
            message: message.into(),
            pos: None,
        }
    }

    /// An error at an exact line and column (both 1-based).
    pub fn at(
        format: &'static str,
        message: impl Into<String>,
        line: usize,
        column: usize,
    ) -> Self {
        ParseError {
            pos: Some(SourcePos { line, column }),
            ..ParseError::new(format, message)
        }
    }

    /// An error known to line granularity only.
    pub fn at_line(format: &'static str, message: impl Into<String>, line: usize) -> Self {
        ParseError::at(format, message, line, 1)
    }

    /// The 1-based line, when known.
    pub fn line(&self) -> Option<usize> {
        self.pos.map(|p| p.line)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(
                f,
                "{} parse error at {}: {}",
                self.format, pos, self.message
            ),
            None => write!(f, "{} parse error: {}", self.format, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Runs a dialect parser under a `schematic.parse` span: dialect, byte
/// count, and (on success) design-size attributes, a
/// `schematic.parse.objects` counter, and on failure a
/// `schematic.parse.error` event carrying the source position.
pub(crate) fn traced_parse<F>(
    text: &str,
    dialect: &'static str,
    recorder: &dyn obs::Recorder,
    f: F,
) -> Result<crate::design::Design, ParseError>
where
    F: FnOnce(&str) -> Result<crate::design::Design, ParseError>,
{
    let span = obs::Span::enter(recorder, "schematic.parse");
    span.attr("dialect", dialect);
    span.attr("bytes", text.len());
    let result = f(text);
    match &result {
        Ok(design) => {
            let stats = design.stats();
            span.attr("design", design.name.as_str());
            span.attr("cells", stats.cells);
            span.attr("instances", stats.instances);
            span.attr("wires", stats.wires);
            let objects =
                stats.cells + stats.instances + stats.wires + stats.labels + stats.connectors;
            recorder.add_counter("schematic.parse.objects", objects as u64);
        }
        Err(e) => {
            span.attr("error", true);
            let mut attrs: Vec<(&str, obs::AttrValue)> = vec![
                ("dialect", dialect.into()),
                ("message", e.message.as_str().into()),
            ];
            if let Some(pos) = &e.pos {
                attrs.push(("line", (pos.line as u64).into()));
                attrs.push(("column", (pos.column as u64).into()));
            }
            obs::event(recorder, "schematic.parse.error", &attrs);
            recorder.add_counter("schematic.parse.errors", 1);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_when_known() {
        let e = ParseError::at("cascade", "unbalanced `(`", 3, 7);
        assert_eq!(
            e.to_string(),
            "cascade parse error at line 3, column 7: unbalanced `(`"
        );
        assert_eq!(e.line(), Some(3));
        let e = ParseError::new("viewstar", "oops");
        assert_eq!(e.to_string(), "viewstar parse error: oops");
        assert_eq!(e.line(), None);
    }
}
