//! Sheets: the drawing pages of a schematic cell.

use interop_core::intern::IStr;

use crate::geom::{BBox, Orient, Point, Transform};
use crate::property::{Label, PropMap};
use crate::symbol::SymbolRef;

/// A placed component instance on a sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within the cell (e.g. `I7`). Interned —
    /// generated and hand-drawn designs alike reuse short `I<n>` names.
    pub name: IStr,
    /// The symbol this instance refers to.
    pub symbol: SymbolRef,
    /// Placement transform (origin + rotation code).
    pub place: Transform,
    /// Instance properties (merged over symbol defaults at netlist time).
    pub props: PropMap,
}

impl Instance {
    /// Creates an instance placed at `origin` with orientation `orient`.
    pub fn new(name: impl Into<IStr>, symbol: SymbolRef, origin: Point, orient: Orient) -> Self {
        Instance {
            name: name.into(),
            symbol,
            place: Transform::new(origin, orient),
            props: PropMap::new(),
        }
    }
}

/// A wire: an open polyline of one or more segments, optionally labelled
/// with a net name (in the owning dialect's bus syntax).
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Polyline vertices; a valid wire has at least two.
    pub points: Vec<Point>,
    /// Net-name label attached to this wire, if any.
    pub label: Option<Label>,
}

impl Wire {
    /// Creates a wire through the given vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a wire needs at least two vertices");
        Wire {
            points,
            label: None,
        }
    }

    /// Attaches a label, returning `self` for chaining.
    pub fn with_label(mut self, label: Label) -> Self {
        self.label = Some(label);
        self
    }

    /// The two ends of the polyline.
    pub fn endpoints(&self) -> (Point, Point) {
        (
            *self.points.first().expect("wire has vertices"),
            *self.points.last().expect("wire has vertices"),
        )
    }

    /// Successive segments of the polyline.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total Manhattan length of the wire.
    pub fn length(&self) -> i64 {
        self.segments().map(|(a, b)| a.manhattan(b)).sum()
    }

    /// True when `p` lies on any segment of the wire (segments are
    /// treated as closed). Works for orthogonal and diagonal segments.
    pub fn touches(&self, p: Point) -> bool {
        self.segments().any(|(a, b)| point_on_segment(p, a, b))
    }
}

/// True when `p` lies on the closed segment `a`–`b`. A degenerate
/// segment (`a == b`) contains only that single point.
pub fn point_on_segment(p: Point, a: Point, b: Point) -> bool {
    if a == b {
        return p == a;
    }
    let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if cross != 0 {
        return false;
    }
    let dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y);
    let len2 = (b.x - a.x) * (b.x - a.x) + (b.y - a.y) * (b.y - a.y);
    dot >= 0 && dot <= len2
}

/// The kinds of connector objects a sheet may carry.
///
/// Viewstar treats all of these as optional decoration (same-named nets
/// join implicitly); Cascade *requires* hierarchy connectors at ports and
/// off-page connectors for nets spanning pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConnectorKind {
    /// Joins same-named nets across pages of one cell.
    OffPage,
    /// Hierarchy port, input direction.
    HierInput,
    /// Hierarchy port, output direction.
    HierOutput,
    /// Hierarchy port, bidirectional.
    HierBidir,
    /// Global net access point (e.g. power rails).
    Global,
}

impl ConnectorKind {
    /// Vendor keyword for the connector kind.
    pub fn keyword(self) -> &'static str {
        match self {
            ConnectorKind::OffPage => "offpage",
            ConnectorKind::HierInput => "hier_in",
            ConnectorKind::HierOutput => "hier_out",
            ConnectorKind::HierBidir => "hier_bidir",
            ConnectorKind::Global => "global",
        }
    }

    /// Parses a vendor keyword.
    pub fn parse(s: &str) -> Option<ConnectorKind> {
        match s {
            "offpage" => Some(ConnectorKind::OffPage),
            "hier_in" => Some(ConnectorKind::HierInput),
            "hier_out" => Some(ConnectorKind::HierOutput),
            "hier_bidir" => Some(ConnectorKind::HierBidir),
            "global" => Some(ConnectorKind::Global),
            _ => None,
        }
    }

    /// True for the three hierarchy-port kinds.
    pub fn is_hierarchy(self) -> bool {
        matches!(
            self,
            ConnectorKind::HierInput | ConnectorKind::HierOutput | ConnectorKind::HierBidir
        )
    }
}

/// A connector object placed on a sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct Connector {
    /// Connector kind.
    pub kind: ConnectorKind,
    /// The net (or port) name, in the owning dialect's syntax. Interned —
    /// the same net name appears on every page it spans.
    pub name: IStr,
    /// Attachment point.
    pub at: Point,
    /// Drawing orientation.
    pub orient: Orient,
}

impl Connector {
    /// Creates a connector.
    pub fn new(kind: ConnectorKind, name: impl Into<IStr>, at: Point) -> Self {
        Connector {
            kind,
            name: name.into(),
            at,
            orient: Orient::R0,
        }
    }
}

/// One page of a schematic cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Sheet {
    /// 1-based page number.
    pub page: u32,
    /// Drawable area.
    pub frame: BBox,
    /// Placed component instances.
    pub instances: Vec<Instance>,
    /// Wires.
    pub wires: Vec<Wire>,
    /// Connector objects.
    pub connectors: Vec<Connector>,
    /// Free annotation text (title blocks, notes).
    pub annotations: Vec<Label>,
}

impl Sheet {
    /// Standard 11x8.5-inch frame in DBU.
    pub fn standard_frame() -> BBox {
        use crate::geom::DBU_PER_INCH;
        BBox::spanning(
            Point::new(0, 0),
            Point::new(11 * DBU_PER_INCH, (85 * DBU_PER_INCH) / 10),
        )
    }

    /// Creates an empty sheet with the standard frame.
    pub fn new(page: u32) -> Self {
        Sheet {
            page,
            frame: Self::standard_frame(),
            instances: Vec::new(),
            wires: Vec::new(),
            connectors: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Finds an instance by name.
    pub fn instance(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Total number of wire segments on the sheet.
    pub fn segment_count(&self) -> usize {
        self.wires
            .iter()
            .map(|w| w.points.len().saturating_sub(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Orient;

    #[test]
    fn wire_geometry_queries() {
        let w = Wire::new(vec![
            Point::new(0, 0),
            Point::new(40, 0),
            Point::new(40, 30),
        ]);
        assert_eq!(w.endpoints(), (Point::new(0, 0), Point::new(40, 30)));
        assert_eq!(w.length(), 70);
        assert!(w.touches(Point::new(20, 0)));
        assert!(w.touches(Point::new(40, 15)));
        assert!(!w.touches(Point::new(20, 10)));
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn degenerate_wire_panics() {
        let _ = Wire::new(vec![Point::new(0, 0)]);
    }

    #[test]
    fn point_on_segment_handles_diagonals_and_ends() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 10);
        assert!(point_on_segment(a, a, b));
        assert!(point_on_segment(b, a, b));
        assert!(point_on_segment(Point::new(5, 5), a, b));
        assert!(!point_on_segment(Point::new(5, 6), a, b));
        assert!(!point_on_segment(Point::new(11, 11), a, b));
    }

    #[test]
    fn connector_keywords_round_trip() {
        for k in [
            ConnectorKind::OffPage,
            ConnectorKind::HierInput,
            ConnectorKind::HierOutput,
            ConnectorKind::HierBidir,
            ConnectorKind::Global,
        ] {
            assert_eq!(ConnectorKind::parse(k.keyword()), Some(k));
        }
        assert!(ConnectorKind::HierInput.is_hierarchy());
        assert!(!ConnectorKind::OffPage.is_hierarchy());
    }

    #[test]
    fn sheet_lookup_and_counts() {
        let mut s = Sheet::new(1);
        s.instances.push(Instance::new(
            "I1",
            SymbolRef::new("lib", "inv", "symbol"),
            Point::new(160, 160),
            Orient::R0,
        ));
        s.wires.push(Wire::new(vec![
            Point::new(0, 0),
            Point::new(16, 0),
            Point::new(16, 16),
        ]));
        assert!(s.instance("I1").is_some());
        assert!(s.instance("I2").is_none());
        assert_eq!(s.segment_count(), 2);
    }
}
