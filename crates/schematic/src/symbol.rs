//! Symbol definitions: the library components instances refer to.

use interop_core::intern::IStr;

use crate::geom::{BBox, Point};
use crate::property::PropMap;

/// Fully-qualified reference to a symbol: library, cell, and view — the
/// triple the paper's symbol-replacement maps rewrite. The parts are
/// interned: the same `basiclib/nand2/symbol` triple referenced by ten
/// thousand instances shares three allocations, not thirty thousand.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolRef {
    /// Library name, e.g. `basiclib`.
    pub library: IStr,
    /// Cell name, e.g. `nand2`.
    pub cell: IStr,
    /// View name, e.g. `symbol`.
    pub view: IStr,
}

impl SymbolRef {
    /// Creates a reference from its three parts.
    pub fn new(library: impl Into<IStr>, cell: impl Into<IStr>, view: impl Into<IStr>) -> Self {
        SymbolRef {
            library: library.into(),
            cell: cell.into(),
            view: view.into(),
        }
    }
}

impl std::fmt::Display for SymbolRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.library, self.cell, self.view)
    }
}

/// Electrical direction of a symbol pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PinDir {
    /// Signal flows into the cell.
    Input,
    /// Signal flows out of the cell.
    Output,
    /// Bidirectional.
    Bidir,
    /// No declared direction (analog / passive).
    Passive,
}

impl PinDir {
    /// Vendor keyword for the direction.
    pub fn keyword(self) -> &'static str {
        match self {
            PinDir::Input => "input",
            PinDir::Output => "output",
            PinDir::Bidir => "bidir",
            PinDir::Passive => "passive",
        }
    }

    /// Parses a vendor keyword.
    pub fn parse(s: &str) -> Option<PinDir> {
        match s {
            "input" => Some(PinDir::Input),
            "output" => Some(PinDir::Output),
            "bidir" => Some(PinDir::Bidir),
            "passive" => Some(PinDir::Passive),
            _ => None,
        }
    }
}

/// A connection point on a symbol body, in symbol-local coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolPin {
    /// Pin name; for bus pins this may be a bit reference like `D<3>`.
    /// Interned — pin names repeat across every instance of a symbol.
    pub name: IStr,
    /// Position in symbol-local DBU.
    pub at: Point,
    /// Electrical direction.
    pub dir: PinDir,
}

impl SymbolPin {
    /// Creates a pin.
    pub fn new(name: impl Into<IStr>, at: Point, dir: PinDir) -> Self {
        SymbolPin {
            name: name.into(),
            at,
            dir,
        }
    }
}

/// A symbol (component graphic) definition.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolDef {
    /// This symbol's own identity.
    pub reference: SymbolRef,
    /// Connection pins in local coordinates.
    pub pins: Vec<SymbolPin>,
    /// Body graphics as line segments (local coordinates); purely
    /// cosmetic but carried through migration for similarity scoring.
    pub body: Vec<(Point, Point)>,
    /// Native drawing grid pitch in DBU (1/10" = 16 for Viewstar
    /// libraries, 1/16" = 10 for Cascade libraries).
    pub grid: i64,
    /// Default properties attached to every instance.
    pub default_props: PropMap,
}

impl SymbolDef {
    /// Creates an empty symbol on the given grid.
    pub fn new(reference: SymbolRef, grid: i64) -> Self {
        SymbolDef {
            reference,
            pins: Vec::new(),
            body: Vec::new(),
            grid,
            default_props: PropMap::new(),
        }
    }

    /// Adds a pin, returning `self` for chaining.
    pub fn with_pin(mut self, name: impl Into<IStr>, at: Point, dir: PinDir) -> Self {
        self.pins.push(SymbolPin::new(name, at, dir));
        self
    }

    /// Adds a body segment, returning `self` for chaining.
    pub fn with_body_segment(mut self, a: Point, b: Point) -> Self {
        self.body.push((a, b));
        self
    }

    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&SymbolPin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Bounding box over pins and body graphics. Returns `None` for a
    /// completely empty symbol.
    pub fn bbox(&self) -> Option<BBox> {
        let mut bb: Option<BBox> = None;
        let mut grow = |p: Point| {
            bb = Some(match bb {
                Some(b) => b.including(p),
                None => BBox::at(p),
            });
        };
        for p in &self.pins {
            grow(p.at);
        }
        for (a, b) in &self.body {
            grow(*a);
            grow(*b);
        }
        bb
    }

    /// True when every pin sits on the symbol's native grid.
    pub fn pins_on_grid(&self) -> bool {
        self.pins.iter().all(|p| p.at.on_grid(self.grid))
    }

    /// Returns a copy with all geometry scaled by `num/den` and the grid
    /// set to `new_grid` — the Section 2 "Scaling" operation.
    pub fn scaled(&self, num: i64, den: i64, new_grid: i64) -> SymbolDef {
        SymbolDef {
            reference: self.reference.clone(),
            pins: self
                .pins
                .iter()
                .map(|p| SymbolPin::new(p.name.clone(), p.at.scaled(num, den), p.dir))
                .collect(),
            body: self
                .body
                .iter()
                .map(|(a, b)| (a.scaled(num, den), b.scaled(num, den)))
                .collect(),
            grid: new_grid,
            default_props: self.default_props.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> SymbolDef {
        SymbolDef::new(SymbolRef::new("basiclib", "inv", "symbol"), 16)
            .with_pin("A", Point::new(0, 0), PinDir::Input)
            .with_pin("Y", Point::new(64, 0), PinDir::Output)
            .with_body_segment(Point::new(16, -16), Point::new(16, 16))
            .with_body_segment(Point::new(16, 16), Point::new(48, 0))
            .with_body_segment(Point::new(16, -16), Point::new(48, 0))
    }

    #[test]
    fn pin_lookup_and_grid_check() {
        let s = inv();
        assert_eq!(s.pin("A").map(|p| p.dir), Some(PinDir::Input));
        assert!(s.pin("Z").is_none());
        assert!(s.pins_on_grid());
    }

    #[test]
    fn bbox_covers_pins_and_body() {
        let bb = inv().bbox().expect("nonempty symbol");
        assert_eq!(bb.lo, Point::new(0, -16));
        assert_eq!(bb.hi, Point::new(64, 16));
        assert!(SymbolDef::new(SymbolRef::new("l", "c", "v"), 16)
            .bbox()
            .is_none());
    }

    #[test]
    fn scaling_moves_pins_onto_target_grid() {
        // 1/10" grid (16 DBU) down to 1/16" grid (10 DBU): factor 5/8.
        let s = inv().scaled(5, 8, 10);
        assert_eq!(s.pin("Y").map(|p| p.at), Some(Point::new(40, 0)));
        assert!(s.pins_on_grid());
        assert_eq!(s.grid, 10);
    }

    #[test]
    fn pin_dir_keyword_round_trip() {
        for d in [
            PinDir::Input,
            PinDir::Output,
            PinDir::Bidir,
            PinDir::Passive,
        ] {
            assert_eq!(PinDir::parse(d.keyword()), Some(d));
        }
        assert_eq!(PinDir::parse("inout"), None);
    }
}
