//! The Viewstar on-disk schematic format: a line-oriented keyword format
//! in the style of late-80s workstation CAD databases.
//!
//! ```text
//! VIEWSTAR 1
//! DESIGN adder
//! GLOBAL VDD
//! LIBRARY basiclib
//! SYMBOL inv symbol GRID 16
//! PIN A 0 0 input
//! BODY 16 -16 16 16
//! ENDSYMBOL
//! ENDLIBRARY
//! CELL top
//! BUS D
//! PORT OUT 0 0 output
//! PAGE 1
//! I I1 basiclib inv symbol 0 0 R0
//! IPROP I1 SIZE 4
//! W 2 64 0 160 0 LABEL mid 96 4
//! C offpage sig 160 0 R0
//! T "title block" 0 0
//! ENDPAGE
//! ENDCELL
//! END
//! ```

use crate::design::{CellSchematic, Design, Library};
use crate::dialect::DialectId;
use crate::geom::{Orient, Point};
use crate::parse::ParseError;
use crate::property::{FontMetrics, Label, PropValue};
use crate::sheet::{Connector, ConnectorKind, Instance, Sheet, Wire};
use crate::symbol::{PinDir, SymbolDef, SymbolPin, SymbolRef};

/// Former Viewstar-specific error type, now the shared [`ParseError`].
#[deprecated(note = "use `schematic::ParseError`")]
pub type ParseViewstarError = ParseError;

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains(' ') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a design to Viewstar text.
pub fn write(design: &Design) -> String {
    let mut out = String::new();
    out.push_str("VIEWSTAR 1\n");
    out.push_str(&format!("DESIGN {}\n", quote(&design.name)));
    out.push_str(&format!("TOP {}\n", quote(&design.top)));
    for g in design.globals() {
        out.push_str(&format!("GLOBAL {}\n", quote(g)));
    }
    for lib in design.libraries() {
        out.push_str(&format!("LIBRARY {}\n", quote(&lib.name)));
        for sym in lib.iter() {
            out.push_str(&format!(
                "SYMBOL {} {} GRID {}\n",
                quote(&sym.reference.cell),
                quote(&sym.reference.view),
                sym.grid
            ));
            for pin in &sym.pins {
                out.push_str(&format!(
                    "PIN {} {} {} {}\n",
                    quote(&pin.name),
                    pin.at.x,
                    pin.at.y,
                    pin.dir.keyword()
                ));
            }
            for (a, b) in &sym.body {
                out.push_str(&format!("BODY {} {} {} {}\n", a.x, a.y, b.x, b.y));
            }
            for (k, v) in sym.default_props.iter() {
                out.push_str(&format!("SPROP {} {}\n", quote(k), quote(&v.to_text())));
            }
            out.push_str("ENDSYMBOL\n");
        }
        out.push_str("ENDLIBRARY\n");
    }
    for (name, cell) in design.cells() {
        out.push_str(&format!("CELL {}\n", quote(name)));
        for b in &cell.buses {
            out.push_str(&format!("BUS {}\n", quote(b)));
        }
        for p in &cell.ports {
            out.push_str(&format!(
                "PORT {} {} {} {}\n",
                quote(&p.name),
                p.at.x,
                p.at.y,
                p.dir.keyword()
            ));
        }
        for sheet in &cell.sheets {
            out.push_str(&format!("PAGE {}\n", sheet.page));
            for inst in &sheet.instances {
                out.push_str(&format!(
                    "I {} {} {} {} {} {} {}\n",
                    quote(&inst.name),
                    quote(&inst.symbol.library),
                    quote(&inst.symbol.cell),
                    quote(&inst.symbol.view),
                    inst.place.origin.x,
                    inst.place.origin.y,
                    inst.place.orient.code()
                ));
                for (k, v) in inst.props.iter() {
                    out.push_str(&format!(
                        "IPROP {} {} {}\n",
                        quote(&inst.name),
                        quote(k),
                        quote(&v.to_text())
                    ));
                }
            }
            for wire in &sheet.wires {
                out.push_str(&format!("W {}", wire.points.len()));
                for p in &wire.points {
                    out.push_str(&format!(" {} {}", p.x, p.y));
                }
                if let Some(l) = &wire.label {
                    out.push_str(&format!(" LABEL {} {} {}", quote(&l.text), l.at.x, l.at.y));
                }
                out.push('\n');
            }
            for c in &sheet.connectors {
                out.push_str(&format!(
                    "C {} {} {} {} {}\n",
                    c.kind.keyword(),
                    quote(&c.name),
                    c.at.x,
                    c.at.y,
                    c.orient.code()
                ));
            }
            for t in &sheet.annotations {
                out.push_str(&format!("T {} {} {}\n", quote(&t.text), t.at.x, t.at.y));
            }
            out.push_str("ENDPAGE\n");
        }
        out.push_str("ENDCELL\n");
    }
    out.push_str("END\n");
    out
}

/// Splits a Viewstar line into tokens, honouring `"..."` quoting with
/// `""` as the embedded-quote escape.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut tok = String::new();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            tok.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(ch) => tok.push(ch),
                    None => break,
                }
            }
            out.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                tok.push(ch);
                chars.next();
            }
            out.push(tok);
        }
    }
    out
}

struct Cursor<'a> {
    toks: &'a [String],
    line: usize,
    idx: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at_line("viewstar", msg, self.line)
    }
    fn next(&mut self) -> Result<&'a str, ParseError> {
        let t = self
            .toks
            .get(self.idx)
            .ok_or_else(|| self.err("unexpected end of line"))?;
        self.idx += 1;
        Ok(t)
    }
    fn int(&mut self) -> Result<i64, ParseError> {
        let t = self.next()?;
        t.parse::<i64>()
            .map_err(|_| self.err(format!("expected integer, got `{t}`")))
    }
    fn orient(&mut self) -> Result<Orient, ParseError> {
        let t = self.next()?;
        Orient::parse(t).ok_or_else(|| self.err(format!("bad orientation `{t}`")))
    }
    fn dir(&mut self) -> Result<PinDir, ParseError> {
        let t = self.next()?;
        PinDir::parse(t).ok_or_else(|| self.err(format!("bad pin direction `{t}`")))
    }
}

/// Parses Viewstar text into a [`Design`].
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse(text: &str) -> Result<Design, ParseError> {
    parse_inner(text)
}

/// Like [`parse`], but traced: emits a `schematic.parse` span (dialect
/// and design-size attributes), a `schematic.parse.objects` counter,
/// and a `schematic.parse.error` event with the source position on
/// failure.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_recorded(text: &str, recorder: &dyn obs::Recorder) -> Result<Design, ParseError> {
    crate::parse::traced_parse(text, "viewstar", recorder, parse_inner)
}

fn parse_inner(text: &str) -> Result<Design, ParseError> {
    let mut design = Design::new("", DialectId::Viewstar);
    let mut cur_lib: Option<Library> = None;
    let mut cur_sym: Option<SymbolDef> = None;
    let mut cur_cell: Option<CellSchematic> = None;
    let mut cur_sheet: Option<Sheet> = None;
    let mut top = String::new();
    let font = FontMetrics::VIEWSTAR;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let toks = tokenize(raw);
        if toks.is_empty() || toks[0].starts_with(';') {
            continue;
        }
        let mut c = Cursor {
            toks: &toks,
            line,
            idx: 1,
        };
        match toks[0].as_str() {
            "VIEWSTAR" | "END" => {}
            "DESIGN" => design.name = c.next()?.to_string(),
            "TOP" => top = c.next()?.to_string(),
            "GLOBAL" => design.add_global(c.next()?),
            "LIBRARY" => cur_lib = Some(Library::new(c.next()?)),
            "ENDLIBRARY" => {
                let lib = cur_lib
                    .take()
                    .ok_or_else(|| c.err("ENDLIBRARY without LIBRARY"))?;
                design.add_library(lib);
            }
            "SYMBOL" => {
                let lib = cur_lib
                    .as_ref()
                    .ok_or_else(|| c.err("SYMBOL outside LIBRARY"))?;
                let cell = c.next()?;
                let view = c.next()?;
                let kw = c.next()?;
                if kw != "GRID" {
                    return Err(c.err("expected GRID"));
                }
                let grid = c.int()?;
                cur_sym = Some(SymbolDef::new(
                    SymbolRef::new(lib.name.clone(), cell, view),
                    grid,
                ));
            }
            "ENDSYMBOL" => {
                let sym = cur_sym
                    .take()
                    .ok_or_else(|| c.err("ENDSYMBOL without SYMBOL"))?;
                cur_lib
                    .as_mut()
                    .ok_or_else(|| c.err("ENDSYMBOL outside LIBRARY"))?
                    .add(sym);
            }
            "PIN" => {
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| c.err("PIN outside SYMBOL"))?;
                let name = c.next()?;
                let (x, y) = (c.int()?, c.int()?);
                let dir = c.dir()?;
                sym.pins.push(SymbolPin::new(name, Point::new(x, y), dir));
            }
            "BODY" => {
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| c.err("BODY outside SYMBOL"))?;
                let a = Point::new(c.int()?, c.int()?);
                let b = Point::new(c.int()?, c.int()?);
                sym.body.push((a, b));
            }
            "SPROP" => {
                let sym = cur_sym
                    .as_mut()
                    .ok_or_else(|| c.err("SPROP outside SYMBOL"))?;
                let k = c.next()?;
                let v = c.next()?;
                sym.default_props.set(k, PropValue::from_text(v));
            }
            "CELL" => cur_cell = Some(CellSchematic::new(c.next()?)),
            "ENDCELL" => {
                let cell = cur_cell
                    .take()
                    .ok_or_else(|| c.err("ENDCELL without CELL"))?;
                design.add_cell(cell);
            }
            "BUS" => {
                cur_cell
                    .as_mut()
                    .ok_or_else(|| c.err("BUS outside CELL"))?
                    .buses
                    .insert(c.next()?.into());
            }
            "PORT" => {
                let cell = cur_cell
                    .as_mut()
                    .ok_or_else(|| c.err("PORT outside CELL"))?;
                let name = c.next()?;
                let (x, y) = (c.int()?, c.int()?);
                let dir = c.dir()?;
                cell.ports.push(SymbolPin::new(name, Point::new(x, y), dir));
            }
            "PAGE" => {
                let page = c.int()? as u32;
                cur_sheet = Some(Sheet::new(page));
            }
            "ENDPAGE" => {
                let sheet = cur_sheet
                    .take()
                    .ok_or_else(|| c.err("ENDPAGE without PAGE"))?;
                cur_cell
                    .as_mut()
                    .ok_or_else(|| c.err("ENDPAGE outside CELL"))?
                    .sheets
                    .push(sheet);
            }
            "I" => {
                let sheet = cur_sheet.as_mut().ok_or_else(|| c.err("I outside PAGE"))?;
                let name = c.next()?;
                let lib = c.next()?;
                let cell = c.next()?;
                let view = c.next()?;
                let (x, y) = (c.int()?, c.int()?);
                let o = c.orient()?;
                sheet.instances.push(Instance::new(
                    name,
                    SymbolRef::new(lib, cell, view),
                    Point::new(x, y),
                    o,
                ));
            }
            "IPROP" => {
                let sheet = cur_sheet
                    .as_mut()
                    .ok_or_else(|| c.err("IPROP outside PAGE"))?;
                let inst = c.next()?;
                let k = c.next()?;
                let v = c.next()?;
                let target = sheet
                    .instances
                    .iter_mut()
                    .find(|i| i.name == inst)
                    .ok_or_else(|| c.err(format!("IPROP for unknown instance `{inst}`")))?;
                target.props.set(k, PropValue::from_text(v));
            }
            "W" => {
                let sheet = cur_sheet.as_mut().ok_or_else(|| c.err("W outside PAGE"))?;
                let n = c.int()? as usize;
                if n < 2 {
                    return Err(c.err("wire needs at least 2 points"));
                }
                let mut pts = Vec::with_capacity(n);
                for _ in 0..n {
                    pts.push(Point::new(c.int()?, c.int()?));
                }
                let mut wire = Wire::new(pts);
                if c.idx < toks.len() {
                    let kw = c.next()?;
                    if kw != "LABEL" {
                        return Err(c.err(format!("expected LABEL, got `{kw}`")));
                    }
                    let text = c.next()?;
                    let (x, y) = (c.int()?, c.int()?);
                    wire = wire.with_label(Label::new(text, Point::new(x, y), font));
                }
                sheet.wires.push(wire);
            }
            "C" => {
                let sheet = cur_sheet.as_mut().ok_or_else(|| c.err("C outside PAGE"))?;
                let kw = c.next()?;
                let kind = ConnectorKind::parse(kw)
                    .ok_or_else(|| c.err(format!("bad connector kind `{kw}`")))?;
                let name = c.next()?;
                let (x, y) = (c.int()?, c.int()?);
                let o = c.orient()?;
                let mut conn = Connector::new(kind, name, Point::new(x, y));
                conn.orient = o;
                sheet.connectors.push(conn);
            }
            "T" => {
                let sheet = cur_sheet.as_mut().ok_or_else(|| c.err("T outside PAGE"))?;
                let text = c.next()?;
                let (x, y) = (c.int()?, c.int()?);
                sheet
                    .annotations
                    .push(Label::new(text, Point::new(x, y), font));
            }
            other => {
                return Err(ParseError::at_line(
                    "viewstar",
                    format!("unknown record `{other}`"),
                    line,
                ))
            }
        }
    }
    if !top.is_empty() {
        design.set_top(top);
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Orient;

    fn sample() -> Design {
        let mut d = Design::new("adder", DialectId::Viewstar);
        d.add_global("VDD");
        let mut lib = Library::new("basiclib");
        lib.add(
            SymbolDef::new(SymbolRef::new("basiclib", "inv", "symbol"), 16)
                .with_pin("A", Point::new(0, 0), PinDir::Input)
                .with_pin("Y", Point::new(64, 0), PinDir::Output)
                .with_body_segment(Point::new(16, -16), Point::new(16, 16)),
        );
        d.add_library(lib);
        let mut cell = CellSchematic::new("top");
        cell.buses.insert("D".into());
        cell.ports
            .push(SymbolPin::new("OUT", Point::new(0, 0), PinDir::Output));
        let mut s = Sheet::new(1);
        let mut inst = Instance::new(
            "I1",
            SymbolRef::new("basiclib", "inv", "symbol"),
            Point::new(160, 320),
            Orient::MXR90,
        );
        inst.props.set("SIZE", 4i64);
        s.instances.push(inst);
        s.wires.push(
            Wire::new(vec![
                Point::new(0, 0),
                Point::new(64, 0),
                Point::new(64, 32),
            ])
            .with_label(Label::new("n 1", Point::new(8, 4), FontMetrics::VIEWSTAR)),
        );
        let mut conn = Connector::new(ConnectorKind::OffPage, "sig", Point::new(64, 32));
        conn.orient = Orient::R90;
        s.connectors.push(conn);
        s.annotations.push(Label::new(
            "page \"one\"",
            Point::new(0, 100),
            FontMetrics::VIEWSTAR,
        ));
        cell.sheets.push(s);
        d.add_cell(cell);
        d.set_top("top");
        d
    }

    #[test]
    fn round_trip_preserves_design() {
        let d = sample();
        let text = write(&d);
        let back = parse(&text).expect("parse ok");
        assert_eq!(back, d);
    }

    #[test]
    fn quoting_handles_spaces_and_quotes() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("two words"), "\"two words\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(tokenize("\"say \"\"hi\"\"\" x"), vec!["say \"hi\"", "x"]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "VIEWSTAR 1\nBOGUS record\n";
        let err = parse(bad).unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(err.message.contains("BOGUS"));
        assert!(err
            .to_string()
            .starts_with("viewstar parse error at line 2"));
    }

    #[test]
    fn iprop_for_unknown_instance_fails() {
        let bad = "CELL c\nPAGE 1\nIPROP I9 k v\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("unknown instance"));
    }

    #[test]
    fn wire_with_too_few_points_fails() {
        let bad = "CELL c\nPAGE 1\nW 1 0 0\n";
        assert!(parse(bad).is_err());
    }
}
